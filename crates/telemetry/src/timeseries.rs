//! Time-series recorder: periodic *delta* snapshots of the global
//! registry to JSONL.
//!
//! Lifetime totals hide trajectory — a counter at 10 000 looks the same
//! whether the last minute contributed 9 000 or 0. Each [`tick`] emits
//! the change since the previous tick: counter deltas, histogram
//! count/sum deltas (interval rates), and gauge *levels* (gauges are
//! instantaneous, deltas would be meaningless). Zero-delta counters and
//! histograms are omitted, so quiet subsystems cost nothing per line.
//!
//! One JSONL line per tick:
//!
//! ```json
//! {"tick":3,"label":"run1.ebv","elapsed_us":812345,
//!  "counters":{"ebv.blocks_connected":1040},
//!  "gauges":{"ebv.bitvec.resident_bytes":4096},
//!  "histograms":{"ebv.sv":{"count":5200,"sum":9812345}}}
//! ```
//!
//! The figure binaries expose this as `--timeseries-out <path>`; the
//! committed `BENCH_trace.json` aggregates full-scale runs.
//!
//! [`tick`]: TimeseriesRecorder::tick

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;

use crate::Stopwatch;

/// Writes one JSONL line per [`tick`](Self::tick); flushes on drop.
pub struct TimeseriesRecorder {
    out: BufWriter<File>,
    prev_counters: HashMap<String, u64>,
    prev_hists: HashMap<String, (u64, u64)>,
    ticks: u64,
    epoch: Stopwatch,
}

impl TimeseriesRecorder {
    /// Create (truncate) the JSONL file at `path`.
    pub fn create(path: &Path) -> std::io::Result<TimeseriesRecorder> {
        Ok(TimeseriesRecorder {
            out: BufWriter::new(File::create(path)?),
            prev_counters: HashMap::new(),
            prev_hists: HashMap::new(),
            ticks: 0,
            epoch: Stopwatch::start(),
        })
    }

    /// Snapshot the global registry and append the delta line for this
    /// interval, labelled `label` (a run/phase name for readers).
    pub fn tick(&mut self, label: &str) {
        let snap = crate::registry::global().snapshot();
        let mut line = String::with_capacity(256);
        line.push_str("{\"tick\":");
        line.push_str(&self.ticks.to_string());
        self.ticks += 1;
        line.push_str(",\"label\":");
        crate::json::escape_into(&mut line, label);
        let _ = write!(
            line,
            ",\"elapsed_us\":{}",
            self.epoch.elapsed().as_micros() as u64
        );

        line.push_str(",\"counters\":{");
        let mut first = true;
        for (name, value) in &snap.counters {
            let prev = self.prev_counters.insert(name.clone(), *value).unwrap_or(0);
            let delta = value.saturating_sub(prev);
            if delta == 0 {
                continue;
            }
            if !first {
                line.push(',');
            }
            first = false;
            crate::json::escape_into(&mut line, name);
            let _ = write!(line, ":{delta}");
        }

        line.push_str("},\"gauges\":{");
        let mut first = true;
        for (name, value) in &snap.gauges {
            if *value == 0 {
                continue;
            }
            if !first {
                line.push(',');
            }
            first = false;
            crate::json::escape_into(&mut line, name);
            let _ = write!(line, ":{value}");
        }

        line.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, h) in &snap.histograms {
            let (pc, ps) = self
                .prev_hists
                .insert(name.clone(), (h.count, h.sum))
                .unwrap_or((0, 0));
            let (dc, ds) = (h.count.saturating_sub(pc), h.sum.saturating_sub(ps));
            if dc == 0 {
                continue;
            }
            if !first {
                line.push(',');
            }
            first = false;
            crate::json::escape_into(&mut line, name);
            let _ = write!(line, ":{{\"count\":{dc},\"sum\":{ds}}}");
        }
        line.push_str("}}");

        let _ = writeln!(self.out, "{line}");
    }

    /// Flush explicitly (also happens on drop).
    pub fn finish(mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

impl Drop for TimeseriesRecorder {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_carry_deltas_not_totals() {
        crate::set_enabled(true);
        let dir = std::env::temp_dir().join("ebv-timeseries-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("ticks.jsonl");
        let c = crate::registry::counter("test.timeseries.steps");
        let h = crate::registry::histogram("test.timeseries.lat");

        let mut rec = TimeseriesRecorder::create(&path).expect("create");
        c.add(5);
        h.record(10);
        rec.tick("first");
        c.add(3);
        rec.tick("second");
        rec.finish().expect("flush");

        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = crate::json::parse(lines[0]).expect("line 0 parses");
        let second = crate::json::parse(lines[1]).expect("line 1 parses");
        let delta = |v: &crate::json::Value| {
            v.get("counters")
                .and_then(|c| c.get("test.timeseries.steps"))
                .and_then(crate::json::Value::as_f64)
        };
        assert_eq!(delta(&first), Some(5.0));
        assert_eq!(delta(&second), Some(3.0), "second tick is the delta");
        assert_eq!(
            first
                .get("histograms")
                .and_then(|h| h.get("test.timeseries.lat"))
                .and_then(|h| h.get("sum"))
                .and_then(crate::json::Value::as_f64),
            Some(10.0)
        );
        assert!(
            second
                .get("histograms")
                .and_then(|h| h.get("test.timeseries.lat"))
                .is_none(),
            "quiet histogram omitted"
        );
        assert_eq!(
            second.get("label").and_then(crate::json::Value::as_str),
            Some("second")
        );
    }
}
