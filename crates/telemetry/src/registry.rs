//! Sharded metric registry.
//!
//! Lookups hash the metric name to one of 16 shards, each a
//! `RwLock<HashMap>`; registration leaks the metric so call sites hold
//! `&'static` handles and never touch the lock again (the `counter!` /
//! `gauge!` / `histogram!` / `span!` macros cache the handle in a per-call-
//! site `OnceLock`). After the one-time lookup, every update is lock-free.
//!
//! Labeled metrics use the convention `name{key=value,...}` — e.g.
//! `sync.peer.requests{peer=3}` — which the exporters split back into
//! Prometheus labels.

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

const SHARDS: usize = 16;

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// A named collection of metrics.
///
/// [`global()`] is the process-wide instance every macro records into;
/// tests build private `Registry` values to keep golden exports
/// deterministic under concurrent test threads.
#[derive(Default)]
pub struct Registry {
    shards: [RwLock<HashMap<String, Metric>>; SHARDS],
}

fn shard_of(name: &str) -> usize {
    // FNV-1a; we only need a stable spread across 16 shards.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h as usize) % SHARDS
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T, F>(&self, name: &str, pick: F, make: fn() -> T) -> &'static T
    where
        T: 'static,
        F: Fn(&Metric) -> Option<&'static T>,
        &'static T: IntoMetric,
    {
        let shard = &self.shards[shard_of(name)];
        if let Some(m) = shard
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .and_then(&pick)
        {
            return m;
        }
        let mut map = shard.write().unwrap_or_else(|e| e.into_inner());
        if let Some(m) = map.get(name).and_then(&pick) {
            return m;
        }
        // If a same-name metric of a *different* kind was registered that is
        // a programming error, but panicking inside instrumentation would be
        // worse than shadowing it.
        let leaked: &'static T = Box::leak(Box::new(make()));
        map.insert(name.to_string(), leaked.into_metric());
        leaked
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> &'static Counter {
        self.get_or_insert(
            name,
            |m| match m {
                Metric::Counter(c) => Some(*c),
                _ => None,
            },
            Counter::new,
        )
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        self.get_or_insert(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(*g),
                _ => None,
            },
            Gauge::new,
        )
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        self.get_or_insert(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(*h),
                _ => None,
            },
            Histogram::new,
        )
    }

    /// Zero every registered metric (between CLI runs, in tests).
    pub fn reset(&self) {
        for shard in &self.shards {
            for m in shard.read().unwrap_or_else(|e| e.into_inner()).values() {
                match m {
                    Metric::Counter(c) => c.reset(),
                    Metric::Gauge(g) => g.reset(),
                    Metric::Histogram(h) => h.reset(),
                }
            }
        }
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> crate::export::Snapshot {
        let mut snap = crate::export::Snapshot::default();
        for shard in &self.shards {
            for (name, m) in shard.read().unwrap_or_else(|e| e.into_inner()).iter() {
                match m {
                    Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                    Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                    Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
                }
            }
        }
        snap.counters.sort();
        snap.gauges.sort();
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

trait IntoMetric {
    fn into_metric(self) -> Metric;
}

impl IntoMetric for &'static Counter {
    fn into_metric(self) -> Metric {
        Metric::Counter(self)
    }
}

impl IntoMetric for &'static Gauge {
    fn into_metric(self) -> Metric {
        Metric::Gauge(self)
    }
}

impl IntoMetric for &'static Histogram {
    fn into_metric(self) -> Metric {
        Metric::Histogram(self)
    }
}

/// The process-global registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Global counter by name. For hot paths prefer the [`crate::counter!`]
/// macro, which caches the handle per call site.
pub fn counter(name: &str) -> &'static Counter {
    global().counter(name)
}

/// Global gauge by name.
pub fn gauge(name: &str) -> &'static Gauge {
    global().gauge(name)
}

/// Global histogram by name.
pub fn histogram(name: &str) -> &'static Histogram {
    global().histogram(name)
}

/// Global counter handle, cached per call site. Use for fixed metric names
/// in hot loops: after the first call the expansion is one `OnceLock` load.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::registry::counter($name))
    }};
}

/// Global gauge handle, cached per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::registry::gauge($name))
    }};
}

/// Global histogram handle, cached per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::registry::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_handle() {
        let r = Registry::new();
        let a = r.counter("x") as *const _;
        let b = r.counter("x") as *const _;
        assert_eq!(a, b);
        assert_ne!(a, r.counter("y") as *const _);
    }

    #[test]
    fn snapshot_is_sorted() {
        let r = Registry::new();
        for name in ["zeta", "alpha", "mid"] {
            r.counter(name);
            r.gauge(&format!("g.{name}"));
            r.histogram(&format!("h.{name}"));
        }
        let s = r.snapshot();
        assert!(s.counters.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(s.gauges.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(s.histograms.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
