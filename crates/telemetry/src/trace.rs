//! Structured event trace.
//!
//! Events are preformatted JSONL lines held in a bounded ring buffer
//! (oldest dropped first) and optionally teed to a file as they are
//! emitted. Each line carries a process-unique `seq` and a microsecond
//! timestamp relative to the first event, e.g.:
//!
//! ```text
//! {"seq":17,"ts_us":88231,"event":"sync.peer_banned","peer":3,"score":120}
//! ```
//!
//! Emission is gated on [`crate::enabled()`]; the [`trace_event!`] macro
//! evaluates its field expressions only when telemetry is on.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Ring capacity: enough for every event of a full experiment run while
/// bounding memory (~a few MB of lines at worst).
const CAPACITY: usize = 16_384;

static SEQ: AtomicU64 = AtomicU64::new(0);

struct TraceState {
    ring: VecDeque<String>,
    tee: Option<BufWriter<File>>,
}

fn state() -> &'static Mutex<TraceState> {
    static STATE: OnceLock<Mutex<TraceState>> = OnceLock::new();
    STATE.get_or_init(|| {
        // Register the overflow counter up front so both exporters show
        // it (at zero) from the first snapshot, not only after a drop.
        crate::registry::counter("trace.dropped");
        Mutex::new(TraceState {
            ring: VecDeque::with_capacity(CAPACITY),
            tee: None,
        })
    })
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// A field value in a trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

macro_rules! impl_from {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {
        $(impl From<$t> for TraceValue {
            fn from(v: $t) -> Self { TraceValue::$variant(v as $cast) }
        })*
    };
}

impl_from!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    f32 => F64 as f64, f64 => F64 as f64,
);

impl From<bool> for TraceValue {
    fn from(v: bool) -> Self {
        TraceValue::Bool(v)
    }
}

impl From<&str> for TraceValue {
    fn from(v: &str) -> Self {
        TraceValue::Str(v.to_string())
    }
}

impl From<String> for TraceValue {
    fn from(v: String) -> Self {
        TraceValue::Str(v)
    }
}

fn push_json(out: &mut String, v: &TraceValue) {
    match v {
        TraceValue::U64(n) => out.push_str(&n.to_string()),
        TraceValue::I64(n) => out.push_str(&n.to_string()),
        TraceValue::F64(n) if n.is_finite() => out.push_str(&format!("{n}")),
        TraceValue::F64(_) => out.push_str("null"),
        TraceValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        TraceValue::Str(s) => crate::json::escape_into(out, s),
    }
}

/// Emit one event. Prefer the [`trace_event!`](crate::trace_event!) macro.
pub fn trace_event(event: &str, fields: &[(&str, TraceValue)]) {
    if !crate::enabled() {
        return;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let ts_us = epoch().elapsed().as_micros() as u64;
    let mut line = String::with_capacity(64 + 16 * fields.len());
    line.push_str("{\"seq\":");
    line.push_str(&seq.to_string());
    line.push_str(",\"ts_us\":");
    line.push_str(&ts_us.to_string());
    line.push_str(",\"event\":");
    crate::json::escape_into(&mut line, event);
    if let Some(ctx) = crate::context::current() {
        // Causal identity: ids render as 16-digit hex strings because
        // the crate's JSON parser models numbers as f64 and would lose
        // the top bits of a u64.
        line.push_str(",\"trace\":\"");
        let _ = write!(line, "{:016x}", ctx.trace);
        line.push_str("\",\"span\":\"");
        let _ = write!(line, "{:016x}", ctx.span);
        line.push('"');
        if ctx.parent != 0 {
            line.push_str(",\"parent\":\"");
            let _ = write!(line, "{:016x}", ctx.parent);
            line.push('"');
        }
    }
    for (k, v) in fields {
        line.push(',');
        crate::json::escape_into(&mut line, k);
        line.push(':');
        push_json(&mut line, v);
    }
    line.push('}');

    // Feed the flight recorder's per-subsystem ring before the shared
    // ring (separate locks; never held together).
    crate::flight::observe(event, &line);

    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(tee) = st.tee.as_mut() {
        let _ = writeln!(tee, "{line}");
    }
    if st.ring.len() == CAPACITY {
        st.ring.pop_front();
        // Overwritten evidence is counted, not silent: flight-recorder
        // bundles embed this so truncation is visible. (The registry
        // shard lock nests inside the trace lock and never the reverse,
        // so there is no cycle.)
        crate::registry::counter("trace.dropped").inc();
    }
    st.ring.push_back(line);
}

/// Copy of the ring buffer contents, oldest first.
pub fn trace_snapshot() -> Vec<String> {
    let st = state().lock().unwrap_or_else(|e| e.into_inner());
    st.ring.iter().cloned().collect()
}

/// Drop all buffered events (the tee file, if any, is unaffected).
pub fn trace_clear() {
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    st.ring.clear();
}

/// Tee every subsequent event to `path` (truncating it), in addition to the
/// ring buffer.
pub fn trace_tee_to_file(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    st.tee = Some(BufWriter::new(file));
    Ok(())
}

/// Stop teeing and flush the tee file.
pub fn trace_untee() {
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(mut tee) = st.tee.take() {
        let _ = tee.flush();
    }
}

/// Emit a structured trace event:
///
/// ```ignore
/// trace_event!("sync.peer_banned", peer = id, score = total, reason = why);
/// ```
///
/// Field values are anything with `Into<TraceValue>` (unsigned/signed
/// integers, floats, bools, strings). Field expressions are not evaluated
/// when telemetry is disabled.
#[macro_export]
macro_rules! trace_event {
    ($event:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::trace::trace_event(
                $event,
                &[$((stringify!($key), $crate::TraceValue::from($value))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_as_jsonl() {
        crate::set_enabled(true);
        crate::trace_event!(
            "test.trace.render",
            height = 7u64,
            depth = -2i64,
            ok = true,
            peer = "alpha\"x"
        );
        let lines = trace_snapshot();
        let line = lines
            .iter()
            .rev()
            .find(|l| l.contains("\"event\":\"test.trace.render\""))
            .expect("event in ring");
        assert!(line.contains("\"height\":7"));
        assert!(line.contains("\"depth\":-2"));
        assert!(line.contains("\"ok\":true"));
        assert!(line.contains("\"peer\":\"alpha\\\"x\""));
        // The line must parse as a JSON object.
        let v = crate::json::parse(line).expect("valid JSON");
        assert!(matches!(v, crate::json::Value::Object(_)));
    }
}
