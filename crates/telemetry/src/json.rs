//! Minimal JSON value model, parser and serializer.
//!
//! The container has no serde; the exporters format JSON by hand and this
//! module provides the inverse — enough of RFC 8259 to parse everything the
//! exporters and the trace emit, so tests can assert round-trips. Not a
//! general-purpose JSON library: no `\u` surrogate-pair pedantry beyond BMP
//! escapes, numbers are `f64`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects are ordered maps so round-trips are
/// deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Escape `s` as a JSON string (including the surrounding quotes) onto
/// `out`.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize a [`Value`] back to compact JSON text.
pub fn serialize(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v);
    out
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            if n.is_finite() {
                // Integers print without a fractional part, mirroring the
                // hand-formatted exporter output.
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let c = *rest.first().ok_or("unterminated string")?;
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = *rest.get(1).ok_or("unterminated escape")?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = rest.get(2..6).ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("empty string tail")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_basic_document() {
        let text = r#"{"a":1,"b":[true,false,null,"x\ny"],"c":{"d":-2.5,"e":1e3}}"#;
        let v = parse(text).unwrap();
        let re = parse(&serialize(&v)).unwrap();
        assert_eq!(v, re);
        assert_eq!(
            v.get("c").and_then(|c| c.get("e")).and_then(Value::as_f64),
            Some(1000.0)
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }
}
