//! Flight recorder: per-subsystem bounded event rings plus post-mortem
//! bundles captured at failure time.
//!
//! Every trace line is also fed here (see [`crate::trace`]), keyed by the
//! event's subsystem — the name segment before the first `.`, so
//! `sync.peer_banned` lands in the `sync` ring and `ibd.interval.wall`
//! in `ibd`. Each ring holds the most recent [`RING_CAP`] lines; older
//! lines are dropped *and counted*, so a bundle can say how much
//! evidence it is missing.
//!
//! [`dump`] snapshots the situation into one self-contained JSON bundle
//! (schema [`BUNDLE_SCHEMA`]): the triggering event, the last-N
//! causally-related lines (filtered by trace id across all subsystem
//! rings when the trigger had one, otherwise the trigger's own ring),
//! per-subsystem drop counts, the `trace.dropped` ring-overflow counter,
//! a full registry snapshot, and any caller extras (per-peer
//! `PeerStats`, reorg shape, interval index). Bundles always land in an
//! in-process ring readable via [`recent_bundles`]; when a post-mortem
//! directory is configured they are also written to disk as
//! `postmortem-<seq>-<trigger>.json` for `ebv-cli postmortem`.
//!
//! The bundle *renderer* is a pure function ([`render_bundle`]) so the
//! schema is pinned by a golden-file test with fixed inputs.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use crate::json::escape_into;

/// Schema tag stamped on every bundle.
pub const BUNDLE_SCHEMA: &str = "ebv.postmortem.v1";
/// Per-subsystem ring capacity, in events.
pub const RING_CAP: usize = 2048;
/// Most events a single bundle will carry.
pub const BUNDLE_EVENTS_MAX: usize = 256;
/// In-process bundle ring capacity.
const RECENT_CAP: usize = 64;

struct FlightState {
    rings: BTreeMap<String, VecDeque<String>>,
    dropped: BTreeMap<String, u64>,
    dir: Option<PathBuf>,
    seq: u64,
    recent: VecDeque<String>,
}

fn state() -> &'static Mutex<FlightState> {
    static STATE: OnceLock<Mutex<FlightState>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(FlightState {
            rings: BTreeMap::new(),
            dropped: BTreeMap::new(),
            dir: None,
            seq: 0,
            recent: VecDeque::new(),
        })
    })
}

fn subsystem(event: &str) -> &str {
    event.split('.').next().unwrap_or(event)
}

/// Record one already-rendered trace line into its subsystem's ring.
/// Called by [`crate::trace::trace_event`]; not meant for direct use.
pub(crate) fn observe(event: &str, line: &str) {
    let sub = subsystem(event);
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    if !st.rings.contains_key(sub) {
        st.rings.insert(sub.to_string(), VecDeque::new());
        st.dropped.insert(sub.to_string(), 0);
    }
    let ring = st.rings.get_mut(sub).expect("ring just inserted");
    if ring.len() == RING_CAP {
        ring.pop_front();
        *st.dropped.get_mut(sub).expect("drop slot") += 1;
    }
    st.rings
        .get_mut(sub)
        .expect("ring present")
        .push_back(line.to_string());
}

/// Direct subsequent bundles to `dir` (created on first dump). `None`
/// keeps bundles in-process only.
pub fn set_postmortem_dir(dir: Option<PathBuf>) {
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    st.dir = dir;
}

/// The most recent bundles, oldest first.
pub fn recent_bundles() -> Vec<String> {
    let st = state().lock().unwrap_or_else(|e| e.into_inner());
    st.recent.iter().cloned().collect()
}

/// Empty the rings, drop counts, and bundle cache. Test isolation only.
pub fn clear() {
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    st.rings.clear();
    st.dropped.clear();
    st.recent.clear();
}

/// Extract the `"seq":N` prefix a trace line always starts with, for
/// cross-ring ordering of filtered events.
fn line_seq(line: &str) -> u64 {
    line.strip_prefix("{\"seq\":")
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

/// Render a bundle from explicit inputs. Pure: the golden-file schema
/// test drives this directly with fixed data.
///
/// * `events` — raw trace lines (each a complete JSON object), in order;
/// * `dropped` — per-subsystem ring-overflow counts;
/// * `extra` — caller context as (key, raw JSON value) pairs appended
///   verbatim as top-level fields.
///
/// Every bundle field is an explicit parameter on purpose: the golden
/// test names each one, so the arity mirrors the schema.
#[allow(clippy::too_many_arguments)]
pub fn render_bundle(
    trigger: &str,
    trace_hex: Option<&str>,
    seq: u64,
    events: &[String],
    dropped: &[(String, u64)],
    trace_dropped: u64,
    metrics_json: &str,
    extra: &[(&str, String)],
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"schema\":\"");
    out.push_str(BUNDLE_SCHEMA);
    out.push_str("\",\"seq\":");
    out.push_str(&seq.to_string());
    out.push_str(",\"trigger\":");
    escape_into(&mut out, trigger);
    out.push_str(",\"trace\":");
    match trace_hex {
        Some(h) => escape_into(&mut out, h),
        None => out.push_str("null"),
    }
    out.push_str(",\"events\":[");
    for (i, line) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(line);
    }
    out.push_str("],\"dropped\":{");
    for (i, (sub, n)) in dropped.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(&mut out, sub);
        out.push(':');
        out.push_str(&n.to_string());
    }
    out.push_str("},\"trace_dropped\":");
    out.push_str(&trace_dropped.to_string());
    out.push_str(",\"metrics\":");
    out.push_str(metrics_json);
    for (key, value) in extra {
        out.push(',');
        escape_into(&mut out, key);
        out.push(':');
        out.push_str(value);
    }
    out.push('}');
    out
}

/// Capture a post-mortem bundle for `trigger`. When `trace` is given the
/// bundle's events are the causally-related lines — every ring line
/// stamped with that trace id, in global `seq` order; otherwise the
/// trigger's own subsystem ring stands in. Returns the on-disk path when
/// a post-mortem directory is configured. No-op while telemetry is
/// disabled.
pub fn dump(trigger: &str, trace: Option<u64>, extra: &[(&str, String)]) -> Option<PathBuf> {
    if !crate::enabled() {
        return None;
    }
    let trace_hex = trace.map(crate::context::hex_id);
    let metrics = crate::export::json_snapshot(&crate::registry::global().snapshot());
    let trace_dropped = crate::registry::counter("trace.dropped").get();

    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    let mut events: Vec<String> = match &trace_hex {
        Some(h) => {
            let needle = format!("\"trace\":\"{h}\"");
            let mut hits: Vec<&String> = st
                .rings
                .values()
                .flatten()
                .filter(|l| l.contains(&needle))
                .collect();
            hits.sort_by_key(|l| line_seq(l));
            hits.into_iter().cloned().collect()
        }
        None => st
            .rings
            .get(subsystem(trigger))
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default(),
    };
    if events.len() > BUNDLE_EVENTS_MAX {
        events.drain(..events.len() - BUNDLE_EVENTS_MAX);
    }
    let dropped: Vec<(String, u64)> = st.dropped.iter().map(|(k, v)| (k.clone(), *v)).collect();
    st.seq += 1;
    let seq = st.seq;
    let bundle = render_bundle(
        trigger,
        trace_hex.as_deref(),
        seq,
        &events,
        &dropped,
        trace_dropped,
        &metrics,
        extra,
    );
    if st.recent.len() == RECENT_CAP {
        st.recent.pop_front();
    }
    st.recent.push_back(bundle.clone());
    let dir = st.dir.clone();
    drop(st);

    let dir = dir?;
    write_bundle(&dir, seq, trigger, &bundle).ok()
}

fn write_bundle(dir: &Path, seq: u64, trigger: &str, bundle: &str) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let slug: String = trigger
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = dir.join(format!("postmortem-{seq:04}-{slug}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(bundle.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both tests reset the process-global flight state; serialize them.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn rings_are_per_subsystem_and_count_drops() {
        let _t = test_lock();
        crate::set_enabled(true);
        clear();
        for i in 0..(RING_CAP + 5) {
            observe(
                "flighttest.tick",
                &format!("{{\"seq\":{i},\"event\":\"flighttest.tick\"}}"),
            );
        }
        observe(
            "flightother.one",
            "{\"seq\":9,\"event\":\"flightother.one\"}",
        );
        let st = state().lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(st.rings["flighttest"].len(), RING_CAP);
        assert_eq!(st.dropped["flighttest"], 5);
        assert_eq!(st.rings["flightother"].len(), 1);
        assert_eq!(st.dropped["flightother"], 0);
    }

    #[test]
    fn dump_filters_by_trace_id_across_rings() {
        let _t = test_lock();
        crate::set_enabled(true);
        clear();
        let keep = "00000000deadbeef";
        observe(
            "flta.step",
            &format!("{{\"seq\":2,\"event\":\"flta.step\",\"trace\":\"{keep}\"}}"),
        );
        observe(
            "fltb.step",
            &format!("{{\"seq\":1,\"event\":\"fltb.step\",\"trace\":\"{keep}\"}}"),
        );
        observe(
            "flta.step",
            "{\"seq\":3,\"event\":\"flta.step\",\"trace\":\"0000000000000bad\"}",
        );
        dump(
            "flta.failure",
            Some(0xdead_beef),
            &[("note", "\"x\"".into())],
        );
        let bundles = recent_bundles();
        let bundle = bundles.last().expect("bundle recorded");
        let v = crate::json::parse(bundle).expect("bundle is valid JSON");
        assert_eq!(
            v.get("schema").and_then(crate::json::Value::as_str),
            Some(BUNDLE_SCHEMA)
        );
        assert_eq!(
            v.get("trace").and_then(crate::json::Value::as_str),
            Some(keep)
        );
        let events = match v.get("events") {
            Some(crate::json::Value::Array(a)) => a,
            other => panic!("events array missing: {other:?}"),
        };
        assert_eq!(events.len(), 2, "only same-trace lines kept");
        // seq order across rings, not ring order.
        assert_eq!(
            events[0].get("seq").and_then(crate::json::Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            v.get("note").and_then(crate::json::Value::as_str),
            Some("x")
        );
        assert!(v.get("metrics").is_some(), "registry snapshot embedded");
        assert!(v.get("trace_dropped").is_some());
    }
}
