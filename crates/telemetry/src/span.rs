//! RAII span timers.
//!
//! A [`Span`] measures the wall-clock time from construction to drop and
//! records it twice: as nanoseconds into a named [`Histogram`], and —
//! optionally — into a `&mut Duration` accumulator. The accumulator is how
//! the existing `EbvBreakdown`/`BaselineBreakdown`/`DboStats` structs keep
//! working unchanged: the span replaces the hand-rolled
//! `let t = Instant::now(); ...; breakdown.ev += t.elapsed()` pairs.
//!
//! When telemetry is disabled and no accumulator is attached, a span takes
//! no clock reading at all; with an accumulator it still times the scope
//! (the breakdown structs are semantically load-bearing for the figure
//! binaries) but skips the histogram update.

use crate::metrics::Histogram;
use std::time::{Duration, Instant};

/// Guard that times a scope. Build via the [`span!`](crate::span!) macro.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span<'a> {
    start: Option<Instant>,
    hist: &'static Histogram,
    acc: Option<&'a mut Duration>,
}

impl<'a> Span<'a> {
    /// Start a span recording into `hist`, optionally accumulating into
    /// `acc`. Prefer the [`span!`](crate::span!) macro, which resolves and
    /// caches the histogram handle.
    #[inline]
    pub fn new(hist: &'static Histogram, acc: Option<&'a mut Duration>) -> Self {
        let start = if acc.is_some() || crate::enabled() {
            Some(Instant::now())
        } else {
            None
        };
        Span { start, hist, acc }
    }
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        if let Some(acc) = self.acc.as_deref_mut() {
            *acc += elapsed;
        }
        // `record` is itself a no-op when telemetry is disabled.
        self.hist.record(elapsed.as_nanos() as u64);
    }
}

/// Time a scope into the named global histogram (nanoseconds).
///
/// ```ignore
/// let _sv = span!("ebv.sv");                      // histogram only
/// let _sv = span!("ebv.sv", &mut breakdown.sv);   // histogram + accumulator
/// ```
///
/// The histogram handle is resolved once per call site and cached in a
/// `OnceLock`; afterwards constructing a span is a flag check plus at most
/// one clock read.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        $crate::Span::new($crate::histogram!($name), ::std::option::Option::None)
    }};
    ($name:expr, $acc:expr) => {{
        $crate::Span::new($crate::histogram!($name), ::std::option::Option::Some($acc))
    }};
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    #[test]
    fn span_feeds_accumulator_even_when_disabled() {
        // Telemetry enabled/disabled state is process-global and other tests
        // may flip it; the accumulator path works in either state.
        let mut acc = Duration::ZERO;
        {
            let _s = crate::span!("test.span.acc", &mut acc);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(acc >= Duration::from_millis(1));
    }
}
