//! Metric primitives: counter, gauge, log-linear histogram.
//!
//! All update paths are single atomic read-modify-writes on `u64`s so they
//! can sit inside the per-input SV loop. No metric ever locks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zero the counter (between CLI runs / in tests).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins instantaneous value (resident bytes, vector counts).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zero the gauge.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per power of two.
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS;
/// Values 0..8 get exact buckets; octaves for msb 3..=63 get 8 each.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUBS; // 496

/// Log-linear histogram over `u64` samples (we record nanoseconds).
///
/// Bucketing follows the HdrHistogram/log-linear family: values below 8 map
/// to exact buckets; above, each power-of-two octave is split into 8 linear
/// sub-buckets, bounding the relative quantile error at 1/8 = 12.5%. Every
/// bucket plus `count`/`sum`/`max` is a relaxed `AtomicU64`, so recording is
/// three unconditional RMWs plus one `fetch_max`.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    /// Exact observed extrema, so tail quantiles (p0/p99/p100) in SLO
    /// gating are not subject to the 12.5% bucket error at the edges.
    /// `min` idles at `u64::MAX` until the first sample.
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Bucket index for a sample.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v < SUBS as u64 {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let sub = ((v >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
            (((msb - SUB_BITS + 1) as usize) << SUB_BITS) + sub
        }
    }

    /// Inclusive upper bound of a bucket: the value reported for any
    /// quantile that lands in it.
    pub fn bucket_upper_bound(idx: usize) -> u64 {
        if idx < SUBS {
            idx as u64
        } else {
            let msb = (idx >> SUB_BITS) as u32 + SUB_BITS - 1;
            let sub = (idx & (SUBS - 1)) as u64;
            let shift = msb - SUB_BITS;
            // The very top bucket's bound is 2^64 - 1; the wrapping ops make
            // that fall out of the same formula.
            (1u64 << msb)
                .wrapping_add((sub + 1) << shift)
                .wrapping_sub(1)
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Zero every bucket and the aggregates.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy (relaxed reads; exact when no
    /// concurrent writers, which is how exports are used).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64)> = (0..NUM_BUCKETS)
            .filter_map(|i| {
                let c = self.buckets[i].load(Ordering::Relaxed);
                (c > 0).then(|| (Self::bucket_upper_bound(i), c))
            })
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count > 0 {
                self.min.load(Ordering::Relaxed)
            } else {
                0
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .field("min", &self.min.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Point-in-time histogram state: non-empty buckets as
/// `(inclusive upper bound, count)` in ascending bound order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Exact smallest recorded sample (0 when empty).
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Value at quantile `q` in [0, 1]: the upper bound of the bucket
    /// holding the ceil(q·count)-th sample, clamped to the exact observed
    /// [min, max]. Relative error is bounded by the 12.5% bucket width in
    /// the interior; q=0 and q=1 are exact (the recorded min and max).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(upper, c) in &self.buckets {
            seen += c;
            if seen >= target {
                return upper.min(self.max).max(self.min);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean of the recorded samples (exact, from sum/count).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut samples: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            for off in 0..3u64 {
                samples.push((1u64 << shift).saturating_add(off));
                samples.push((1u64 << shift).saturating_sub(1));
            }
        }
        samples.sort_unstable();
        let mut last = 0usize;
        for v in samples {
            let idx = Histogram::bucket_index(v);
            assert!(idx < NUM_BUCKETS, "v={v} idx={idx}");
            assert!(idx >= last, "index not monotone at v={v}");
            last = idx;
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [0u64, 1, 7, 8, 15, 16, 17, 100, 1000, 123_456_789, u64::MAX] {
            let idx = Histogram::bucket_index(v);
            assert!(
                v <= Histogram::bucket_upper_bound(idx),
                "v={v} above upper bound of its bucket"
            );
            if idx > 0 {
                assert!(
                    v > Histogram::bucket_upper_bound(idx - 1),
                    "v={v} not above previous bucket"
                );
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..8u64 {
            let idx = Histogram::bucket_index(v);
            assert_eq!(Histogram::bucket_upper_bound(idx), v);
        }
    }
}
