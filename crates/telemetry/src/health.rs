//! Liveness and SLO health: progress heartbeats, a stall watchdog, and
//! a metrics-snapshot SLO evaluator.
//!
//! Long-running subsystems beat ([`heartbeat`]) at natural progress
//! points — `sync.session.progress` once per driver round,
//! `ibd.interval.progress` as each interval lands. A beat bumps a
//! same-named counter (so exports show progress rates) and refreshes the
//! task's last-seen time. [`stalled`] reports tasks whose last beat is
//! older than a deadline; [`Watchdog`] polls that from a background
//! thread and flags each stall once per silent period (`health.stalls`
//! counter plus a `health.stall` trace event), so a stalled 500-node
//! heal is distinguishable from a merely slow one.
//!
//! [`evaluate_slo`] turns the JSON metrics snapshot
//! ([`crate::json_snapshot`]) plus a declarative SLO document into a
//! list of violations — `ebv-cli health --slo slo.json --gate` exits
//! nonzero on any, making it a CI gate. An SLO document is
//! `{"slos":[<rule>...]}` where each rule names exactly one subject:
//!
//! ```json
//! {"name":"no-bans","counter":"sync.peer.bans","max":0}
//! {"name":"sv-tail","histogram":"ebv.sv","p99_max":250000,"max_max":1000000}
//! {"name":"wire-errors","error_rate":{"errors":"sync.peer.wire_errors","total":"sync.batches"},"max":0.05}
//! {"name":"resident","gauge":"ebv.bitvec.resident_bytes","max":8388608,"min":0}
//! ```
//!
//! Histogram bounds accept `p50_max`/`p90_max`/`p99_max` (bucketed,
//! ≤12.5% error), `max_max` and `min_min` (exact — see
//! [`crate::metrics::Histogram`]'s min/max tracking), and `mean_max`.
//! A metric missing from the snapshot reads as 0; an error-rate rule
//! with a zero denominator passes (no traffic, no error budget spent).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::json::Value;
use crate::Stopwatch;

struct HealthState {
    /// Task name → last beat, µs since the health epoch.
    beats: HashMap<String, u64>,
    epoch: Stopwatch,
}

fn state() -> &'static Mutex<HealthState> {
    static STATE: OnceLock<Mutex<HealthState>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(HealthState {
            beats: HashMap::new(),
            epoch: Stopwatch::start(),
        })
    })
}

/// Record progress for `name`: refresh its last-seen time and bump the
/// counter of the same name. No-op while telemetry is disabled.
pub fn heartbeat(name: &str) {
    if !crate::enabled() {
        return;
    }
    crate::registry::counter(name).inc();
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    let now = st.epoch.elapsed().as_micros() as u64;
    match st.beats.get_mut(name) {
        Some(t) => *t = now,
        None => {
            st.beats.insert(name.to_string(), now);
        }
    }
}

/// Tasks whose last beat is older than `deadline`, as
/// `(name, age in µs)`, sorted by name. A task that never beat is not
/// listed — it has made no progress claim to break.
pub fn stalled(deadline: Duration) -> Vec<(String, u64)> {
    let st = state().lock().unwrap_or_else(|e| e.into_inner());
    let now = st.epoch.elapsed().as_micros() as u64;
    let cutoff = deadline.as_micros() as u64;
    let mut out: Vec<(String, u64)> = st
        .beats
        .iter()
        .filter_map(|(name, &last)| {
            let age = now.saturating_sub(last);
            (age > cutoff).then(|| (name.clone(), age))
        })
        .collect();
    out.sort();
    out
}

/// Forget all heartbeats. Test isolation only.
pub fn reset() {
    let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
    st.beats.clear();
}

/// Background stall detector. Polls [`stalled`] every `poll` and, for
/// each task silent past `deadline`, emits one `health.stall` trace
/// event and one `health.stalls` count *per silent period* — a task
/// that resumes and stalls again is flagged again, a task that stays
/// silent is not re-flagged every poll. The thread stops when the
/// watchdog is dropped.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    pub fn spawn(deadline: Duration, poll: Duration) -> Watchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ebv-watchdog".into())
            .spawn(move || {
                // Task name → beat-age at which it was last flagged; a
                // fresh beat resets the age below the deadline, arming
                // the task again.
                let mut flagged: HashMap<String, u64> = HashMap::new();
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(poll);
                    let stalls = stalled(deadline);
                    for (name, age_us) in &stalls {
                        let rearmed = match flagged.get(name) {
                            Some(&last_age) => *age_us < last_age,
                            None => true,
                        };
                        if rearmed {
                            crate::registry::counter("health.stalls").inc();
                            crate::trace_event!(
                                "health.stall",
                                task = name.as_str(),
                                age_us = *age_us,
                                deadline_us = deadline.as_micros() as u64,
                            );
                        }
                        flagged.insert(name.clone(), *age_us);
                    }
                    // Tasks that beat again fall off the stall list; drop
                    // them from the flagged set so a future stall fires.
                    flagged.retain(|name, _| stalls.iter().any(|(n, _)| n == name));
                }
            })
            .expect("spawn watchdog thread");
        Watchdog {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One broken SLO rule.
#[derive(Clone, Debug, PartialEq)]
pub struct SloViolation {
    /// The rule's `name` (or its subject metric when unnamed).
    pub rule: String,
    /// Human-readable `observed vs bound` sentence.
    pub detail: String,
}

fn num(v: Option<&Value>) -> Option<f64> {
    v.and_then(Value::as_f64)
}

fn lookup(metrics: &Value, section: &str, name: &str) -> f64 {
    num(metrics.get(section).and_then(|s| s.get(name))).unwrap_or(0.0)
}

/// Evaluate `slo` (the parsed SLO document) against `metrics` (a parsed
/// [`crate::json_snapshot`] document). Returns the violations — empty
/// means every rule holds — or an error when the SLO document itself is
/// malformed.
pub fn evaluate_slo(metrics: &Value, slo: &Value) -> Result<Vec<SloViolation>, String> {
    let rules = match slo.get("slos") {
        Some(Value::Array(rules)) => rules,
        _ => return Err("SLO document has no \"slos\" array".into()),
    };
    let mut violations = Vec::new();
    for (i, rule) in rules.iter().enumerate() {
        let subject_count = ["counter", "gauge", "histogram", "error_rate"]
            .iter()
            .filter(|k| rule.get(k).is_some())
            .count();
        if subject_count != 1 {
            return Err(format!(
                "rule {i}: need exactly one of counter/gauge/histogram/error_rate"
            ));
        }
        let fallback;
        let name = match rule.get("name").and_then(Value::as_str) {
            Some(n) => n,
            None => {
                fallback = format!("rule-{i}");
                &fallback
            }
        };
        let mut check = |observed: f64, bound_key: &str, what: &str| {
            if let Some(bound) = num(rule.get(bound_key)) {
                let breached = if bound_key.ends_with("_min") || bound_key == "min" {
                    observed < bound
                } else {
                    observed > bound
                };
                if breached {
                    violations.push(SloViolation {
                        rule: name.to_string(),
                        detail: format!("{what} = {observed} breaches {bound_key} = {bound}"),
                    });
                }
            }
        };

        if let Some(metric) = rule.get("counter").and_then(Value::as_str) {
            let v = lookup(metrics, "counters", metric);
            check(v, "max", &format!("counter {metric}"));
            check(v, "min", &format!("counter {metric}"));
        } else if let Some(metric) = rule.get("gauge").and_then(Value::as_str) {
            let v = lookup(metrics, "gauges", metric);
            check(v, "max", &format!("gauge {metric}"));
            check(v, "min", &format!("gauge {metric}"));
        } else if let Some(metric) = rule.get("histogram").and_then(Value::as_str) {
            let hist = metrics.get("histograms").and_then(|h| h.get(metric));
            for (field, bound_key) in [
                ("p50", "p50_max"),
                ("p90", "p90_max"),
                ("p99", "p99_max"),
                ("max", "max_max"),
                ("mean", "mean_max"),
            ] {
                let v = num(hist.and_then(|h| h.get(field))).unwrap_or(0.0);
                check(v, bound_key, &format!("histogram {metric} {field}"));
            }
            let v = num(hist.and_then(|h| h.get("min"))).unwrap_or(0.0);
            check(v, "min_min", &format!("histogram {metric} min"));
        } else if let Some(pair) = rule.get("error_rate") {
            let errors = pair
                .get("errors")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("rule {i}: error_rate needs \"errors\""))?;
            let total = pair
                .get("total")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("rule {i}: error_rate needs \"total\""))?;
            let denom = lookup(metrics, "counters", total);
            if denom > 0.0 {
                let rate = lookup(metrics, "counters", errors) / denom;
                check(rate, "max", &format!("error_rate {errors}/{total}"));
            }
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn metrics() -> Value {
        json::parse(
            r#"{"counters":{"sync.peer.bans":2,"sync.batches":100,"sync.peer.wire_errors":3},
                "gauges":{"resident":4096},
                "histograms":{"ebv.sv":{"count":10,"sum":100,"min":2,"max":60,
                                         "mean":10,"p50":8,"p90":30,"p99":60}},
                "derived":{}}"#,
        )
        .expect("fixture parses")
    }

    #[test]
    fn slo_rules_pass_and_breach() {
        let m = metrics();
        let slo = json::parse(
            r#"{"slos":[
                {"name":"bans","counter":"sync.peer.bans","max":0},
                {"name":"tail","histogram":"ebv.sv","p99_max":50,"min_min":1},
                {"name":"rate","error_rate":{"errors":"sync.peer.wire_errors","total":"sync.batches"},"max":0.5},
                {"name":"resident","gauge":"resident","max":8192}
            ]}"#,
        )
        .expect("slo parses");
        let violations = evaluate_slo(&m, &slo).expect("well-formed");
        let rules: Vec<&str> = violations.iter().map(|v| v.rule.as_str()).collect();
        assert_eq!(rules, ["bans", "tail"], "{violations:?}");
    }

    #[test]
    fn missing_metric_reads_as_zero_and_idle_rate_passes() {
        let m = metrics();
        let slo = json::parse(
            r#"{"slos":[
                {"name":"ghost","counter":"no.such.counter","max":0},
                {"name":"idle","error_rate":{"errors":"x","total":"never.counted"},"max":0.0}
            ]}"#,
        )
        .expect("slo parses");
        assert!(evaluate_slo(&m, &slo).expect("well-formed").is_empty());
    }

    #[test]
    fn malformed_rules_are_rejected() {
        let m = metrics();
        for bad in [
            r#"{"slos":[{"name":"two","counter":"a","gauge":"b","max":0}]}"#,
            r#"{"slos":[{"name":"none","max":0}]}"#,
            r#"{"not_slos":true}"#,
        ] {
            let slo = json::parse(bad).expect("fixture parses");
            assert!(evaluate_slo(&m, &slo).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn heartbeats_age_into_stalls() {
        crate::set_enabled(true);
        heartbeat("test.health.task");
        let fresh = stalled(Duration::from_secs(3600));
        assert!(
            !fresh.iter().any(|(n, _)| n == "test.health.task"),
            "fresh beat listed as stalled"
        );
        let aged = stalled(Duration::ZERO);
        assert!(
            aged.iter().any(|(n, _)| n == "test.health.task"),
            "zero deadline must flag every beat"
        );
    }
}
