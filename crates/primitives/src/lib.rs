//! From-scratch cryptographic and encoding primitives for the EBV
//! reproduction.
//!
//! This crate is the lowest substrate of the workspace. It provides, with no
//! external cryptography dependencies:
//!
//! * [`hash`] — SHA-256, double-SHA-256, HMAC-SHA256, RIPEMD-160 and the
//!   Bitcoin-style `HASH160` composition, plus the fixed-width digest types
//!   [`Hash256`] and [`Hash160`] used as transaction/block identifiers.
//! * [`ec`] — secp256k1 field/curve arithmetic and ECDSA signing and
//!   verification with RFC 6979 deterministic nonces. Script Validation (SV)
//!   cost in both the Bitcoin baseline and the EBV node is dominated by these
//!   verifications, exactly as in the paper's Figs. 16b and 17b.
//! * [`encode`] — Bitcoin-like wire encoding (little-endian integers,
//!   `CompactSize` varints, length-prefixed byte vectors) used for
//!   transactions, blocks, proofs and status data. Serialized sizes feed the
//!   paper's memory-requirement experiments (Figs. 1 and 14).
//! * [`hex`] — minimal hex encoding/decoding for display and test vectors.
//! * [`base58`] — Base58Check address encoding (display-level sugar for
//!   examples and tools).

pub mod base58;
pub mod ec;
pub mod encode;
pub mod hash;
pub mod hex;
pub mod u256;

pub use ec::{PrivateKey, PublicKey, Signature};
pub use encode::{Decodable, DecodeError, Encodable};
pub use hash::{hash160, sha256, sha256d, Hash160, Hash256};
