//! Base58Check encoding — human-readable addresses for pay-to-pubkey-hash
//! outputs, as used throughout the Bitcoin ecosystem.
//!
//! Payload layout: `version byte || data || first 4 bytes of
//! sha256d(version || data)`, encoded in the 58-character alphabet that
//! omits `0OIl`.

use crate::hash::{sha256d, Hash160};

const ALPHABET: &[u8; 58] = b"123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

/// Version byte for P2PKH addresses (Bitcoin mainnet's `1…` prefix).
pub const VERSION_P2PKH: u8 = 0x00;

/// Encode raw bytes in base58 (no checksum).
pub fn encode(data: &[u8]) -> String {
    // Count leading zero bytes: each becomes a literal '1'.
    let zeros = data.iter().take_while(|&&b| b == 0).count();
    // Repeated division by 58 over the big-endian number.
    let mut digits: Vec<u8> = Vec::with_capacity(data.len() * 138 / 100 + 1);
    for &byte in &data[zeros..] {
        let mut carry = byte as u32;
        for d in digits.iter_mut() {
            carry += (*d as u32) << 8;
            *d = (carry % 58) as u8;
            carry /= 58;
        }
        while carry > 0 {
            digits.push((carry % 58) as u8);
            carry /= 58;
        }
    }
    let mut out = String::with_capacity(zeros + digits.len());
    out.extend(std::iter::repeat_n('1', zeros));
    out.extend(digits.iter().rev().map(|&d| ALPHABET[d as usize] as char));
    out
}

/// Base58 decoding errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Base58Error {
    /// Character outside the alphabet at the given offset.
    InvalidChar(usize),
    /// Checksum mismatch in [`decode_check`].
    BadChecksum,
    /// Payload too short to contain a checksum.
    TooShort,
}

impl std::fmt::Display for Base58Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for Base58Error {}

/// Decode base58 (no checksum).
pub fn decode(s: &str) -> Result<Vec<u8>, Base58Error> {
    let bytes = s.as_bytes();
    let ones = bytes.iter().take_while(|&&b| b == b'1').count();
    let mut out: Vec<u8> = Vec::with_capacity(s.len());
    for (i, &c) in bytes[ones..].iter().enumerate() {
        let digit = ALPHABET
            .iter()
            .position(|&a| a == c)
            .ok_or(Base58Error::InvalidChar(ones + i))? as u32;
        let mut carry = digit;
        for b in out.iter_mut() {
            carry += (*b as u32) * 58;
            *b = carry as u8;
            carry >>= 8;
        }
        while carry > 0 {
            out.push(carry as u8);
            carry >>= 8;
        }
    }
    out.extend(std::iter::repeat_n(0, ones));
    out.reverse();
    Ok(out)
}

/// Encode with a version byte and 4-byte double-SHA256 checksum.
pub fn encode_check(version: u8, payload: &[u8]) -> String {
    let mut data = Vec::with_capacity(1 + payload.len() + 4);
    data.push(version);
    data.extend_from_slice(payload);
    let checksum = sha256d(&data);
    data.extend_from_slice(&checksum.as_bytes()[..4]);
    encode(&data)
}

/// Decode and verify a Base58Check string, returning `(version, payload)`.
pub fn decode_check(s: &str) -> Result<(u8, Vec<u8>), Base58Error> {
    let data = decode(s)?;
    if data.len() < 5 {
        return Err(Base58Error::TooShort);
    }
    let (body, checksum) = data.split_at(data.len() - 4);
    let expected = sha256d(body);
    if &expected.as_bytes()[..4] != checksum {
        return Err(Base58Error::BadChecksum);
    }
    Ok((body[0], body[1..].to_vec()))
}

/// The P2PKH address for a pubkey hash.
pub fn p2pkh_address(hash: &Hash160) -> String {
    encode_check(VERSION_P2PKH, hash.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash160;

    #[test]
    fn known_vectors() {
        // Standard base58 vectors.
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"hello world"), "StV1DL6CwTryKyV");
        assert_eq!(encode(&[0x00, 0x00, 0x01]), "112");
        assert_eq!(decode("StV1DL6CwTryKyV").unwrap(), b"hello world");
        assert_eq!(decode("112").unwrap(), vec![0x00, 0x00, 0x01]);
    }

    #[test]
    fn genesis_address_vector() {
        // The famous genesis-block address: HASH160 of Satoshi's pubkey.
        // Check the well-known round trip property instead of the exact
        // pubkey: any 20-byte payload with version 0 yields a '1…' string.
        let h = hash160(b"some pubkey");
        let addr = p2pkh_address(&h);
        assert!(addr.starts_with('1'));
        let (version, payload) = decode_check(&addr).unwrap();
        assert_eq!(version, VERSION_P2PKH);
        assert_eq!(payload, h.as_bytes());
    }

    #[test]
    fn round_trip_random_payloads() {
        for len in 0..40 {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + len) as u8).collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn checksum_detects_typos() {
        let addr = p2pkh_address(&hash160(b"k"));
        // Flip one character (pick one that stays in the alphabet).
        let mut chars: Vec<char> = addr.chars().collect();
        let i = chars.len() / 2;
        chars[i] = if chars[i] == '2' { '3' } else { '2' };
        let typo: String = chars.into_iter().collect();
        assert!(matches!(
            decode_check(&typo),
            Err(Base58Error::BadChecksum) | Err(Base58Error::InvalidChar(_))
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode("0"), Err(Base58Error::InvalidChar(0)));
        assert_eq!(decode("abcO"), Err(Base58Error::InvalidChar(3)));
        assert_eq!(decode_check("1111"), Err(Base58Error::TooShort));
    }

    #[test]
    fn leading_zeros_preserved() {
        let data = [0u8, 0, 0, 7, 9];
        let enc = encode(&data);
        assert!(enc.starts_with("111"));
        assert_eq!(decode(&enc).unwrap(), data);
    }
}
