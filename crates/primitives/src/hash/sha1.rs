//! SHA-1, implemented from FIPS 180-4.
//!
//! Present only because Bitcoin's script engine exposes `OP_SHA1`; nothing
//! security-critical in this workspace hashes with it.

/// One-shot SHA-1 digest.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut state: [u32; 5] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0];

    let mut chunks = data.chunks_exact(64);
    for block in &mut chunks {
        compress(&mut state, block.try_into().expect("64 bytes"));
    }
    let rem = chunks.remainder();

    // Padding: 0x80, zeros, 64-bit big-endian bit length.
    let mut last = [0u8; 128];
    last[..rem.len()].copy_from_slice(rem);
    last[rem.len()] = 0x80;
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let blocks = if rem.len() >= 56 { 2 } else { 1 };
    last[blocks * 64 - 8..blocks * 64].copy_from_slice(&bit_len.to_be_bytes());
    for i in 0..blocks {
        compress(
            &mut state,
            last[i * 64..(i + 1) * 64].try_into().expect("64 bytes"),
        );
    }

    let mut out = [0u8; 20];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 80];
    for i in 0..16 {
        w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }

    let [mut a, mut b, mut c, mut d, mut e] = *state;
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i / 20 {
            0 => ((b & c) | (!b & d), 0x5a827999),
            1 => (b ^ c ^ d, 0x6ed9eba1),
            2 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
            _ => (b ^ c ^ d, 0xca62c1d6),
        };
        let t = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = t;
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex::encode(&sha1(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            hex::encode(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex::encode(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let input = vec![b'a'; 1_000_000];
        assert_eq!(
            hex::encode(&sha1(&input)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn padding_boundaries_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for len in 50..70 {
            assert!(seen.insert(sha1(&vec![7u8; len])), "collision at {len}");
        }
    }
}
