//! Hash functions and fixed-width digest types.
//!
//! The chain substrate identifies transactions and blocks by
//! double-SHA-256 ([`sha256d`]) exactly as Bitcoin does; addresses use
//! [`hash160`] (`RIPEMD160(SHA256(x))`). The EBV threat model (paper §IV-A)
//! assumes these are collision resistant.

mod hmac;
mod ripemd160;
mod sha1;
mod sha256;

pub use hmac::hmac_sha256;
pub use ripemd160::ripemd160;
pub use sha1::sha1;
pub use sha256::Sha256;

use crate::hex;

/// Shared hex `fmt` body for digest newtypes.
macro_rules! fmt_digest {
    () => {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&hex::encode(&self.0))
        }
    };
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    Sha256::digest(data)
}

/// Double SHA-256 (`SHA256(SHA256(x))`) — transaction ids, block hashes and
/// Merkle-tree nodes.
pub fn sha256d(data: &[u8]) -> Hash256 {
    Hash256(Sha256::digest(&Sha256::digest(data)))
}

/// `RIPEMD160(SHA256(x))` — the short hash used for pay-to-pubkey-hash
/// addresses.
pub fn hash160(data: &[u8]) -> Hash160 {
    Hash160(ripemd160(&Sha256::digest(data)))
}

/// A 32-byte digest (txid, block hash, Merkle node).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Hash256(pub [u8; 32]);

impl Hash256 {
    /// The all-zero hash, used for the coinbase "null outpoint" and as the
    /// genesis previous-block pointer.
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// Interpret `bytes` as a digest.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Hash256(bytes)
    }

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Parse from hex (byte order as written, not reversed).
    pub fn from_hex(s: &str) -> Result<Self, hex::HexError> {
        Ok(Hash256(hex::decode_array(s)?))
    }

    /// Whether this is the all-zero hash.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }

    /// Hash-of-concatenation of two digests — the Merkle parent operation.
    pub fn merkle_parent(left: &Hash256, right: &Hash256) -> Hash256 {
        let mut buf = [0u8; 64];
        buf[..32].copy_from_slice(&left.0);
        buf[32..].copy_from_slice(&right.0);
        sha256d(&buf)
    }
}

impl std::fmt::Debug for Hash256 {
    fmt_digest!();
}

impl std::fmt::Display for Hash256 {
    fmt_digest!();
}

impl AsRef<[u8]> for Hash256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A 20-byte digest (pubkey hash).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Hash160(pub [u8; 20]);

impl Hash160 {
    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }
}

impl std::fmt::Debug for Hash160 {
    fmt_digest!();
}

impl std::fmt::Display for Hash160 {
    fmt_digest!();
}

impl AsRef<[u8]> for Hash160 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256d_known_vector() {
        // Double-SHA256 of "hello" (a widely reproduced vector).
        assert_eq!(
            sha256d(b"hello").to_string(),
            "9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50"
        );
    }

    #[test]
    fn hash160_of_empty() {
        // RIPEMD160(SHA256("")).
        assert_eq!(
            hash160(b"").to_string(),
            "b472a266d0bd89c13706a4132ccfb16f7c3b9fcb"
        );
    }

    #[test]
    fn merkle_parent_is_order_sensitive() {
        let a = sha256d(b"a");
        let b = sha256d(b"b");
        assert_ne!(
            Hash256::merkle_parent(&a, &b),
            Hash256::merkle_parent(&b, &a)
        );
    }

    #[test]
    fn zero_and_hex_round_trip() {
        assert!(Hash256::ZERO.is_zero());
        let h = sha256d(b"x");
        assert!(!h.is_zero());
        assert_eq!(Hash256::from_hex(&h.to_string()).unwrap(), h);
    }
}
