//! Bitcoin-like wire encoding.
//!
//! Little-endian fixed-width integers, `CompactSize` varints, and
//! length-prefixed byte strings. All chain data structures (transactions,
//! blocks, proofs, bit-vectors) round-trip through [`Encodable`] /
//! [`Decodable`]; the serialized sizes are what the paper's
//! memory-requirement experiments (Figs. 1, 14) measure.

use crate::hash::{Hash160, Hash256};

/// Errors from decoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A varint was not minimally encoded.
    NonCanonicalVarInt,
    /// A length prefix exceeds the sanity limit.
    OversizedLength(u64),
    /// Trailing bytes remained after a full-buffer decode.
    TrailingBytes(usize),
    /// A structurally invalid value (e.g. unknown enum tag).
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::NonCanonicalVarInt => write!(f, "non-canonical varint"),
            DecodeError::OversizedLength(n) => write!(f, "length prefix {n} too large"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
            DecodeError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Maximum element count accepted for any length-prefixed collection.
/// Far above anything a valid block contains; guards allocation bombs.
pub const MAX_COLLECTION_LEN: u64 = 1 << 25;

/// Maximum *elements* any decoder may pre-allocate from an untrusted
/// length prefix. A claimed count above this still decodes (up to
/// [`MAX_COLLECTION_LEN`]) — the vector just grows incrementally as
/// elements are actually read, so a huge claim backed by a tiny buffer
/// costs the attacker bytes, not us memory.
pub const MAX_DECODE_PREALLOC: usize = 1024;

/// A cursor over an input buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn read_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.read_bytes(1)?[0])
    }

    pub fn read_u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(
            self.read_bytes(2)?.try_into().expect("2 bytes"),
        ))
    }

    pub fn read_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.read_bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn read_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.read_bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a `CompactSize` varint, rejecting non-minimal encodings.
    pub fn read_varint(&mut self) -> Result<u64, DecodeError> {
        let first = self.read_u8()?;
        let value = match first {
            0..=0xfc => return Ok(first as u64),
            0xfd => self.read_u16()? as u64,
            0xfe => self.read_u32()? as u64,
            0xff => self.read_u64()?,
        };
        let minimal = match first {
            0xfd => (0xfd..=0xffff).contains(&value),
            0xfe => value > 0xffff && value <= 0xffff_ffff,
            _ => value > 0xffff_ffff,
        };
        if !minimal {
            return Err(DecodeError::NonCanonicalVarInt);
        }
        Ok(value)
    }

    /// Read a varint length prefix, bounded by [`MAX_COLLECTION_LEN`].
    pub fn read_len(&mut self) -> Result<usize, DecodeError> {
        let n = self.read_varint()?;
        if n > MAX_COLLECTION_LEN {
            return Err(DecodeError::OversizedLength(n));
        }
        Ok(n as usize)
    }

    /// Read a varint-length-prefixed byte string.
    pub fn read_var_bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.read_len()?;
        Ok(self.read_bytes(n)?.to_vec())
    }
}

/// Append a `CompactSize` varint.
pub fn write_varint(out: &mut Vec<u8>, v: u64) {
    match v {
        0..=0xfc => out.push(v as u8),
        0xfd..=0xffff => {
            out.push(0xfd);
            out.extend_from_slice(&(v as u16).to_le_bytes());
        }
        0x1_0000..=0xffff_ffff => {
            out.push(0xfe);
            out.extend_from_slice(&(v as u32).to_le_bytes());
        }
        _ => {
            out.push(0xff);
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Serialized size of a varint.
pub fn varint_len(v: u64) -> usize {
    match v {
        0..=0xfc => 1,
        0xfd..=0xffff => 3,
        0x1_0000..=0xffff_ffff => 5,
        _ => 9,
    }
}

/// Append a varint-length-prefixed byte string.
pub fn write_var_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    write_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// A value with a canonical byte encoding.
pub trait Encodable {
    /// Append the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Serialize to a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Size of the encoding in bytes.
    fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }
}

/// A value decodable from its canonical byte encoding.
pub trait Decodable: Sized {
    /// Decode one value from the reader, advancing it.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Decode from a buffer, requiring every byte to be consumed.
    fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(DecodeError::TrailingBytes(r.remaining()));
        }
        Ok(v)
    }
}

impl Encodable for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decodable for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.read_u8()
    }
}

impl Encodable for u16 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn encoded_len(&self) -> usize {
        2
    }
}

impl Decodable for u16 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.read_u16()
    }
}

impl Encodable for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl Decodable for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.read_u32()
    }
}

impl Encodable for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decodable for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.read_u64()
    }
}

impl Encodable for Hash256 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
    fn encoded_len(&self) -> usize {
        32
    }
}

impl Decodable for Hash256 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Hash256(r.read_bytes(32)?.try_into().expect("32 bytes")))
    }
}

impl Encodable for Hash160 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
    fn encoded_len(&self) -> usize {
        20
    }
}

impl Decodable for Hash160 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Hash160(r.read_bytes(20)?.try_into().expect("20 bytes")))
    }
}

impl<T: Encodable> Encodable for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for item in self {
            item.encode(out);
        }
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.iter().map(Encodable::encoded_len).sum::<usize>()
    }
}

impl<T: Decodable> Decodable for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.read_len()?;
        let mut out = Vec::with_capacity(n.min(MAX_DECODE_PREALLOC));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha256d;

    #[test]
    fn varint_round_trip_boundaries() {
        for v in [
            0u64,
            1,
            0xfc,
            0xfd,
            0xfe,
            0xffff,
            0x1_0000,
            0xffff_ffff,
            0x1_0000_0000,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "v = {v}");
            let mut r = Reader::new(&buf);
            assert_eq!(r.read_varint().unwrap(), v, "v = {v}");
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn varint_rejects_non_minimal() {
        // 0x05 encoded with the 0xfd (u16) form.
        let buf = [0xfd, 0x05, 0x00];
        assert_eq!(
            Reader::new(&buf).read_varint(),
            Err(DecodeError::NonCanonicalVarInt)
        );
        // 0xffff encoded with the 0xfe (u32) form.
        let buf = [0xfe, 0xff, 0xff, 0x00, 0x00];
        assert_eq!(
            Reader::new(&buf).read_varint(),
            Err(DecodeError::NonCanonicalVarInt)
        );
        // small value in u64 form.
        let mut buf = vec![0xff];
        buf.extend_from_slice(&5u64.to_le_bytes());
        assert_eq!(
            Reader::new(&buf).read_varint(),
            Err(DecodeError::NonCanonicalVarInt)
        );
    }

    #[test]
    fn truncated_input_errors() {
        let buf = [0xfd, 0x05];
        assert_eq!(
            Reader::new(&buf).read_varint(),
            Err(DecodeError::UnexpectedEnd)
        );
        assert_eq!(Reader::new(&[]).read_u32(), Err(DecodeError::UnexpectedEnd));
        assert_eq!(
            <Hash256 as Decodable>::from_bytes(&[0u8; 31]),
            Err(DecodeError::UnexpectedEnd)
        );
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut buf = sha256d(b"x").to_bytes();
        buf.push(0);
        assert_eq!(
            <Hash256 as Decodable>::from_bytes(&buf),
            Err(DecodeError::TrailingBytes(1))
        );
    }

    #[test]
    fn var_bytes_round_trip() {
        let data = vec![7u8; 300];
        let mut buf = Vec::new();
        write_var_bytes(&mut buf, &data);
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_var_bytes().unwrap(), data);
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        write_varint(&mut buf, MAX_COLLECTION_LEN + 1);
        assert!(matches!(
            Reader::new(&buf).read_len(),
            Err(DecodeError::OversizedLength(_))
        ));
    }

    #[test]
    fn vec_round_trip() {
        let v: Vec<u32> = (0..1000).collect();
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), v.encoded_len());
        assert_eq!(Vec::<u32>::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn huge_claimed_count_in_tiny_buffer_fails_cleanly() {
        // A length prefix claiming the full collection cap, backed by a
        // handful of bytes. Preallocation is clamped to
        // MAX_DECODE_PREALLOC elements, so this must fail on missing
        // bytes — fast and small — rather than allocate for the claim.
        let mut buf = Vec::new();
        write_varint(&mut buf, MAX_COLLECTION_LEN);
        buf.extend_from_slice(&[0u8; 16]);
        assert_eq!(
            Vec::<u64>::decode(&mut Reader::new(&buf)),
            Err(DecodeError::UnexpectedEnd)
        );
    }

    #[test]
    fn huge_claimed_var_bytes_in_tiny_buffer_fails_cleanly() {
        let mut buf = Vec::new();
        write_varint(&mut buf, MAX_COLLECTION_LEN);
        buf.extend_from_slice(&[0u8; 16]);
        assert_eq!(
            Reader::new(&buf).read_var_bytes(),
            Err(DecodeError::UnexpectedEnd)
        );
    }

    #[test]
    fn ints_are_little_endian() {
        assert_eq!(0x0102_0304u32.to_bytes(), vec![4, 3, 2, 1]);
        assert_eq!(0x0102u16.to_bytes(), vec![2, 1]);
    }
}
