//! Fixed-width 256-bit unsigned arithmetic.
//!
//! [`U256`] is the carrier type for the secp256k1 field and scalar
//! implementations in [`crate::ec`]. Limbs are `u64`, least significant
//! first; widening multiplication produces a little-endian `[u64; 8]`.
//! All operations are constant-size loops (no heap allocation).

/// A 256-bit unsigned integer; `limbs[0]` is least significant.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct U256 {
    pub limbs: [u64; 4],
}

impl U256 {
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    pub const ONE: U256 = U256 {
        limbs: [1, 0, 0, 0],
    };

    /// Construct from a small integer.
    pub const fn from_u64(v: u64) -> U256 {
        U256 {
            limbs: [v, 0, 0, 0],
        }
    }

    /// Construct from limbs given most-significant first (matches the way
    /// curve constants are written in standards documents).
    pub const fn from_be_limbs(l: [u64; 4]) -> U256 {
        U256 {
            limbs: [l[3], l[2], l[1], l[0]],
        }
    }

    /// Parse 32 big-endian bytes.
    pub fn from_be_bytes(b: &[u8; 32]) -> U256 {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[3 - i] = u64::from_be_bytes(b[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        U256 { limbs }
    }

    /// Serialize as 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..i * 8 + 8].copy_from_slice(&self.limbs[3 - i].to_be_bytes());
        }
        out
    }

    pub fn is_zero(&self) -> bool {
        self.limbs == [0; 4]
    }

    /// Test bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < 256);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        for i in (0..4).rev() {
            if self.limbs[i] != 0 {
                return 64 * i + (64 - self.limbs[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// `self + other`, returning the sum and the carry-out.
    pub fn overflowing_add(&self, other: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for (i, o) in out.iter_mut().enumerate() {
            let (s1, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            *o = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        (U256 { limbs: out }, carry != 0)
    }

    /// `self - other`, returning the difference and the borrow-out.
    pub fn overflowing_sub(&self, other: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for (i, o) in out.iter_mut().enumerate() {
            let (d1, b1) = self.limbs[i].overflowing_sub(other.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *o = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (U256 { limbs: out }, borrow != 0)
    }

    /// Full 256×256 → 512-bit product, little-endian limbs.
    ///
    /// Fully unrolled operand scanning: each row accumulates into locals the
    /// optimizer keeps in registers, which is measurably faster than the
    /// obvious `out[i + j]` loop (the array round-trips through memory).
    /// Every `lo + aᵢ·bⱼ + carry` sum fits in `u128`:
    /// (2⁶⁴−1) + (2⁶⁴−1)² + (2⁶⁴−1) = 2¹²⁸ − 1.
    pub fn widening_mul(&self, other: &U256) -> [u64; 8] {
        let [a0, a1, a2, a3] = self.limbs;
        let [b0, b1, b2, b3] = other.limbs;
        let (a0, a1, a2, a3) = (a0 as u128, a1 as u128, a2 as u128, a3 as u128);
        let (b0, b1, b2, b3) = (b0 as u128, b1 as u128, b2 as u128, b3 as u128);

        // Row 0: a0 · b.
        let t = a0 * b0;
        let r0 = t as u64;
        let t = a0 * b1 + (t >> 64);
        let mut r1 = t as u64;
        let t = a0 * b2 + (t >> 64);
        let mut r2 = t as u64;
        let t = a0 * b3 + (t >> 64);
        let mut r3 = t as u64;
        let mut r4 = (t >> 64) as u64;

        // Row 1: a1 · b, shifted one limb.
        let t = r1 as u128 + a1 * b0;
        r1 = t as u64;
        let t = r2 as u128 + a1 * b1 + (t >> 64);
        r2 = t as u64;
        let t = r3 as u128 + a1 * b2 + (t >> 64);
        r3 = t as u64;
        let t = r4 as u128 + a1 * b3 + (t >> 64);
        r4 = t as u64;
        let mut r5 = (t >> 64) as u64;

        // Row 2.
        let t = r2 as u128 + a2 * b0;
        r2 = t as u64;
        let t = r3 as u128 + a2 * b1 + (t >> 64);
        r3 = t as u64;
        let t = r4 as u128 + a2 * b2 + (t >> 64);
        r4 = t as u64;
        let t = r5 as u128 + a2 * b3 + (t >> 64);
        r5 = t as u64;
        let mut r6 = (t >> 64) as u64;

        // Row 3.
        let t = r3 as u128 + a3 * b0;
        let r3 = t as u64;
        let t = r4 as u128 + a3 * b1 + (t >> 64);
        let r4 = t as u64;
        let t = r5 as u128 + a3 * b2 + (t >> 64);
        let r5 = t as u64;
        let t = r6 as u128 + a3 * b3 + (t >> 64);
        r6 = t as u64;
        let r7 = (t >> 64) as u64;

        [r0, r1, r2, r3, r4, r5, r6, r7]
    }

    /// `self²` as a 512-bit product. Same result as `widening_mul(self)`
    /// but computes each cross product `aᵢ·aⱼ` (i ≠ j) once and doubles the
    /// sum, so squaring costs ~10 limb products instead of 16 — squarings
    /// dominate the point-doubling ladder, so this matters.
    pub fn widening_sqr(&self) -> [u64; 8] {
        let [a0, a1, a2, a3] = self.limbs;
        let (a0, a1, a2, a3) = (a0 as u128, a1 as u128, a2 as u128, a3 as u128);

        // Six cross products, column-scanned into limbs c1..c6 (column 0 has
        // no cross term). Each accumulator sum below stays within u128: at
        // most carry + full-product + low-limb = (2⁶⁴−1) + (2⁶⁴−1)² +
        // (2⁶⁴−1) = 2¹²⁸ − 1.
        let x12 = a1 * a2;
        let x13 = a1 * a3;
        let t = a0 * a1;
        let c1 = t as u64;
        let t = a0 * a2 + (t >> 64);
        let c2 = t as u64;
        let t = a0 * a3 + (x12 as u64 as u128) + (t >> 64);
        let c3 = t as u64;
        let t = x13 + (x12 >> 64) + (t >> 64);
        let c4 = t as u64;
        let t = a2 * a3 + (t >> 64);
        let c5 = t as u64;
        let c6 = (t >> 64) as u64;

        // Double the cross sum (columns 1..6 shift into 1..7; the top bit of
        // c6 becomes c7, so nothing falls off 512 bits).
        let d1 = c1 << 1;
        let d2 = (c2 << 1) | (c1 >> 63);
        let d3 = (c3 << 1) | (c2 >> 63);
        let d4 = (c4 << 1) | (c3 >> 63);
        let d5 = (c5 << 1) | (c4 >> 63);
        let d6 = (c6 << 1) | (c5 >> 63);
        let d7 = c6 >> 63;

        // Add the diagonal terms aᵢ² at columns 2i.
        let s0 = a0 * a0;
        let s1 = a1 * a1;
        let s2 = a2 * a2;
        let s3 = a3 * a3;
        let r0 = s0 as u64;
        let t = d1 as u128 + (s0 >> 64);
        let r1 = t as u64;
        let t = d2 as u128 + (s1 as u64 as u128) + (t >> 64);
        let r2 = t as u64;
        let t = d3 as u128 + (s1 >> 64) + (t >> 64);
        let r3 = t as u64;
        let t = d4 as u128 + (s2 as u64 as u128) + (t >> 64);
        let r4 = t as u64;
        let t = d5 as u128 + (s2 >> 64) + (t >> 64);
        let r5 = t as u64;
        let t = d6 as u128 + (s3 as u64 as u128) + (t >> 64);
        let r6 = t as u64;
        let t = d7 as u128 + (s3 >> 64) + (t >> 64);
        let r7 = t as u64;
        debug_assert_eq!(t >> 64, 0, "square of a 256-bit value fits in 512 bits");

        [r0, r1, r2, r3, r4, r5, r6, r7]
    }

    /// Logical shift right by one bit.
    pub fn shr1(&self) -> U256 {
        let l = &self.limbs;
        U256 {
            limbs: [
                (l[0] >> 1) | (l[1] << 63),
                (l[1] >> 1) | (l[2] << 63),
                (l[2] >> 1) | (l[3] << 63),
                l[3] >> 1,
            ],
        }
    }

    /// Euclidean division: `(self / divisor, self % divisor)` by binary long
    /// division. Not a hot path — used by the init-time GLV lattice
    /// derivation and by tests.
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &U256) -> (U256, U256) {
        assert!(!divisor.is_zero(), "division by zero");
        let mut q = U256::ZERO;
        let mut r = U256::ZERO;
        for i in (0..self.bits()).rev() {
            // r := 2r + bit_i(self); the invariant r < divisor means the
            // true value fits in 257 bits, so track the shifted-out bit.
            let overflow = r.bit(255);
            r = r.shl1();
            if self.bit(i) {
                r.limbs[0] |= 1;
            }
            if overflow {
                // True value is 2^256 + r ≥ divisor; subtracting the divisor
                // wraps back into range: r + (2^256 − divisor).
                let comp = U256::ZERO.overflowing_sub(divisor).0;
                r = r.overflowing_add(&comp).0;
                q.limbs[i / 64] |= 1 << (i % 64);
            } else if r >= *divisor {
                r = r.overflowing_sub(divisor).0;
                q.limbs[i / 64] |= 1 << (i % 64);
            }
        }
        (q, r)
    }

    /// Logical shift left by one bit (the top bit falls off).
    pub fn shl1(&self) -> U256 {
        let l = &self.limbs;
        U256 {
            limbs: [
                l[0] << 1,
                (l[1] << 1) | (l[0] >> 63),
                (l[2] << 1) | (l[1] >> 63),
                (l[3] << 1) | (l[2] >> 63),
            ],
        }
    }

    /// Modular inverse of `self` modulo the odd modulus `m`, by binary
    /// extended GCD (HAC 14.61). Returns `None` for zero or when
    /// `gcd(self, m) ≠ 1`. Orders of magnitude cheaper than the Fermat
    /// `a^(m-2)` exponentiation the EC code used historically; the Fermat
    /// paths are kept as references and pinned by differential tests.
    ///
    /// Requires `self < m`.
    pub fn inv_mod(&self, m: &U256) -> Option<U256> {
        debug_assert!(m.limbs[0] & 1 == 1, "modulus must be odd");
        debug_assert!(self < m, "operand must be reduced");
        if self.is_zero() {
            return None;
        }
        let mut u = *self;
        let mut v = *m;
        let mut x1 = U256::ONE;
        let mut x2 = U256::ZERO;
        loop {
            while u.limbs[0] & 1 == 0 {
                u = u.shr1();
                x1 = half_mod(&x1, m);
            }
            while v.limbs[0] & 1 == 0 {
                v = v.shr1();
                x2 = half_mod(&x2, m);
            }
            if u == U256::ONE {
                return Some(x1);
            }
            if v == U256::ONE {
                return Some(x2);
            }
            if u >= v {
                u = u.overflowing_sub(&v).0;
                x1 = sub_mod(&x1, &x2, m);
                if u.is_zero() {
                    // gcd(self, m) = v > 1.
                    return None;
                }
            } else {
                v = v.overflowing_sub(&u).0;
                x2 = sub_mod(&x2, &x1, m);
            }
        }
    }
}

/// `x / 2 mod m` for odd `m`: shift if even, else add `m` first (making it
/// even) and shift the 257-bit sum.
fn half_mod(x: &U256, m: &U256) -> U256 {
    if x.limbs[0] & 1 == 0 {
        x.shr1()
    } else {
        let (s, carry) = x.overflowing_add(m);
        let mut h = s.shr1();
        if carry {
            h.limbs[3] |= 1 << 63;
        }
        h
    }
}

/// `a - b mod m` for `a, b < m`.
fn sub_mod(a: &U256, b: &U256, m: &U256) -> U256 {
    let (d, borrow) = a.overflowing_sub(b);
    if borrow {
        d.overflowing_add(m).0
    } else {
        d
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl std::fmt::Debug for U256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "U256(0x{})", crate::hex::encode(&self.to_be_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn be_bytes_round_trip() {
        let mut b = [0u8; 32];
        for (i, item) in b.iter_mut().enumerate() {
            *item = i as u8;
        }
        assert_eq!(U256::from_be_bytes(&b).to_be_bytes(), b);
    }

    #[test]
    fn add_sub_inverse() {
        let a = U256::from_be_limbs([0x0123, 0x4567, 0x89ab, 0xcdef]);
        let b = U256::from_be_limbs([0xfedc, 0xba98, 0x7654, 0x3210]);
        let (s, c) = a.overflowing_add(&b);
        assert!(!c);
        let (d, bo) = s.overflowing_sub(&b);
        assert!(!bo);
        assert_eq!(d, a);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = U256 {
            limbs: [u64::MAX, u64::MAX, 0, 0],
        };
        let (s, c) = a.overflowing_add(&U256::ONE);
        assert!(!c);
        assert_eq!(s.limbs, [0, 0, 1, 0]);
    }

    #[test]
    fn add_overflow_flag() {
        let max = U256 {
            limbs: [u64::MAX; 4],
        };
        let (s, c) = max.overflowing_add(&U256::ONE);
        assert!(c);
        assert!(s.is_zero());
    }

    #[test]
    fn sub_borrow_flag() {
        let (d, b) = U256::ZERO.overflowing_sub(&U256::ONE);
        assert!(b);
        assert_eq!(d.limbs, [u64::MAX; 4]);
    }

    #[test]
    fn widening_mul_small() {
        let p = u(0xffff_ffff).widening_mul(&u(0xffff_ffff));
        assert_eq!(p[0], 0xffff_fffe_0000_0001);
        assert!(p[1..].iter().all(|&l| l == 0));
    }

    #[test]
    fn widening_mul_max() {
        // (2^256 - 1)^2 = 2^512 - 2^257 + 1
        let max = U256 {
            limbs: [u64::MAX; 4],
        };
        let p = max.widening_mul(&max);
        assert_eq!(p[0], 1);
        assert_eq!(p[1], 0);
        assert_eq!(p[2], 0);
        assert_eq!(p[3], 0);
        assert_eq!(p[4], u64::MAX - 1);
        assert_eq!(p[5], u64::MAX);
        assert_eq!(p[6], u64::MAX);
        assert_eq!(p[7], u64::MAX);
    }

    #[test]
    fn widening_sqr_matches_mul() {
        let samples = [
            U256::ZERO,
            U256::ONE,
            u(u64::MAX),
            U256::from_be_limbs([0x0123, 0x4567, 0x89ab, 0xcdef]),
            U256 {
                limbs: [u64::MAX; 4],
            },
            U256::from_be_limbs([
                0xdeadbeefdeadbeef,
                0xfeedfacefeedface,
                0x0123456789abcdef,
                0xfedcba9876543210,
            ]),
        ];
        for s in samples {
            assert_eq!(s.widening_sqr(), s.widening_mul(&s), "{s:?}");
        }
    }

    #[test]
    fn shr1_halves() {
        let x = U256::from_be_limbs([0x8000000000000001, 1, 3, 7]);
        let h = x.shr1();
        // 2·(x>>1) + (x & 1) == x
        let (d, carry) = h.overflowing_add(&h);
        assert!(!carry);
        assert_eq!(d.overflowing_add(&U256::ONE).0, x);
        assert_eq!(U256::ONE.shr1(), U256::ZERO);
    }

    #[test]
    fn inv_mod_small_prime() {
        // Modulus 17: inverses are easy to check by hand.
        let m = u(17);
        for a in 1u64..17 {
            let inv = u(a).inv_mod(&m).expect("unit mod prime");
            let prod = u(a).widening_mul(&inv);
            // prod mod 17 must be 1 (prod fits in u128 here).
            let v = (prod[0] as u128) + ((prod[1] as u128) << 64);
            assert_eq!(v % 17, 1, "a = {a}");
        }
        assert!(U256::ZERO.inv_mod(&m).is_none());
        // Non-unit: gcd(3, 15) = 3.
        assert!(u(3).inv_mod(&u(15)).is_none());
    }

    #[test]
    fn ordering() {
        assert!(u(1) < u(2));
        assert!(
            U256 {
                limbs: [0, 0, 0, 1]
            } > U256 {
                limbs: [u64::MAX, u64::MAX, u64::MAX, 0]
            }
        );
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        let x = U256 {
            limbs: [0, 1, 0, 0],
        };
        assert_eq!(x.bits(), 65);
        assert!(x.bit(64));
        assert!(!x.bit(63));
    }
}
