//! Fixed-width 256-bit unsigned arithmetic.
//!
//! [`U256`] is the carrier type for the secp256k1 field and scalar
//! implementations in [`crate::ec`]. Limbs are `u64`, least significant
//! first; widening multiplication produces a little-endian `[u64; 8]`.
//! All operations are constant-size loops (no heap allocation).

/// A 256-bit unsigned integer; `limbs[0]` is least significant.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct U256 {
    pub limbs: [u64; 4],
}

impl U256 {
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    pub const ONE: U256 = U256 {
        limbs: [1, 0, 0, 0],
    };

    /// Construct from a small integer.
    pub const fn from_u64(v: u64) -> U256 {
        U256 {
            limbs: [v, 0, 0, 0],
        }
    }

    /// Construct from limbs given most-significant first (matches the way
    /// curve constants are written in standards documents).
    pub const fn from_be_limbs(l: [u64; 4]) -> U256 {
        U256 {
            limbs: [l[3], l[2], l[1], l[0]],
        }
    }

    /// Parse 32 big-endian bytes.
    pub fn from_be_bytes(b: &[u8; 32]) -> U256 {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[3 - i] = u64::from_be_bytes(b[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        U256 { limbs }
    }

    /// Serialize as 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..i * 8 + 8].copy_from_slice(&self.limbs[3 - i].to_be_bytes());
        }
        out
    }

    pub fn is_zero(&self) -> bool {
        self.limbs == [0; 4]
    }

    /// Test bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < 256);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        for i in (0..4).rev() {
            if self.limbs[i] != 0 {
                return 64 * i + (64 - self.limbs[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// `self + other`, returning the sum and the carry-out.
    pub fn overflowing_add(&self, other: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for (i, o) in out.iter_mut().enumerate() {
            let (s1, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            *o = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        (U256 { limbs: out }, carry != 0)
    }

    /// `self - other`, returning the difference and the borrow-out.
    pub fn overflowing_sub(&self, other: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for (i, o) in out.iter_mut().enumerate() {
            let (d1, b1) = self.limbs[i].overflowing_sub(other.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *o = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (U256 { limbs: out }, borrow != 0)
    }

    /// Full 256×256 → 512-bit product, little-endian limbs.
    pub fn widening_mul(&self, other: &U256) -> [u64; 8] {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let t =
                    out[i + j] as u128 + (self.limbs[i] as u128) * (other.limbs[j] as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            out[i + 4] = carry as u64;
        }
        out
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl std::fmt::Debug for U256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "U256(0x{})", crate::hex::encode(&self.to_be_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn be_bytes_round_trip() {
        let mut b = [0u8; 32];
        for (i, item) in b.iter_mut().enumerate() {
            *item = i as u8;
        }
        assert_eq!(U256::from_be_bytes(&b).to_be_bytes(), b);
    }

    #[test]
    fn add_sub_inverse() {
        let a = U256::from_be_limbs([0x0123, 0x4567, 0x89ab, 0xcdef]);
        let b = U256::from_be_limbs([0xfedc, 0xba98, 0x7654, 0x3210]);
        let (s, c) = a.overflowing_add(&b);
        assert!(!c);
        let (d, bo) = s.overflowing_sub(&b);
        assert!(!bo);
        assert_eq!(d, a);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = U256 {
            limbs: [u64::MAX, u64::MAX, 0, 0],
        };
        let (s, c) = a.overflowing_add(&U256::ONE);
        assert!(!c);
        assert_eq!(s.limbs, [0, 0, 1, 0]);
    }

    #[test]
    fn add_overflow_flag() {
        let max = U256 {
            limbs: [u64::MAX; 4],
        };
        let (s, c) = max.overflowing_add(&U256::ONE);
        assert!(c);
        assert!(s.is_zero());
    }

    #[test]
    fn sub_borrow_flag() {
        let (d, b) = U256::ZERO.overflowing_sub(&U256::ONE);
        assert!(b);
        assert_eq!(d.limbs, [u64::MAX; 4]);
    }

    #[test]
    fn widening_mul_small() {
        let p = u(0xffff_ffff).widening_mul(&u(0xffff_ffff));
        assert_eq!(p[0], 0xffff_fffe_0000_0001);
        assert!(p[1..].iter().all(|&l| l == 0));
    }

    #[test]
    fn widening_mul_max() {
        // (2^256 - 1)^2 = 2^512 - 2^257 + 1
        let max = U256 {
            limbs: [u64::MAX; 4],
        };
        let p = max.widening_mul(&max);
        assert_eq!(p[0], 1);
        assert_eq!(p[1], 0);
        assert_eq!(p[2], 0);
        assert_eq!(p[3], 0);
        assert_eq!(p[4], u64::MAX - 1);
        assert_eq!(p[5], u64::MAX);
        assert_eq!(p[6], u64::MAX);
        assert_eq!(p[7], u64::MAX);
    }

    #[test]
    fn ordering() {
        assert!(u(1) < u(2));
        assert!(
            U256 {
                limbs: [0, 0, 0, 1]
            } > U256 {
                limbs: [u64::MAX, u64::MAX, u64::MAX, 0]
            }
        );
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        let x = U256 {
            limbs: [0, 1, 0, 0],
        };
        assert_eq!(x.bits(), 65);
        assert!(x.bit(64));
        assert!(!x.bit(63));
    }
}
