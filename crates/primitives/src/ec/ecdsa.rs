//! ECDSA signing and verification over secp256k1.
//!
//! Signatures use the 64-byte compact encoding (`r || s`, both 32-byte
//! big-endian) with low-S canonicalization, matching what the script
//! engine's `OP_CHECKSIG` consumes.

use super::point::{lincomb_gen, Affine, PointTable};
use super::rfc6979;
use super::scalar::Scalar;

/// A compact ECDSA signature.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    pub r: Scalar,
    pub s: Scalar,
}

/// Why a signature failed to parse or verify.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SigError {
    /// r or s is zero or ≥ n.
    ComponentOutOfRange,
    /// s is in the upper half of the range (non-canonical encoding).
    HighS,
    /// The compact encoding has the wrong length.
    BadLength,
}

impl std::fmt::Display for SigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SigError::ComponentOutOfRange => write!(f, "signature component out of range"),
            SigError::HighS => write!(f, "non-canonical high-S signature"),
            SigError::BadLength => write!(f, "compact signature must be 64 bytes"),
        }
    }
}

impl std::error::Error for SigError {}

impl Signature {
    /// Serialize as `r || s`, 64 bytes.
    pub fn to_compact(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_be_bytes());
        out[32..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parse a compact signature, enforcing canonical (low-S) form.
    ///
    /// Both components must lie in `[1, n-1]`: `from_be_bytes` rejects
    /// values ≥ n and the zero check below rejects the rest. This range
    /// gate is load-bearing for batch verification ([`super::batch`]),
    /// which divides by `s` and multiplies by `r` — a parsed [`Signature`]
    /// can never hand the batch a zero scalar.
    pub fn from_compact(bytes: &[u8]) -> Result<Signature, SigError> {
        if bytes.len() != 64 {
            return Err(SigError::BadLength);
        }
        let r = Scalar::from_be_bytes(bytes[..32].try_into().expect("32 bytes"))
            .ok_or(SigError::ComponentOutOfRange)?;
        let s = Scalar::from_be_bytes(bytes[32..].try_into().expect("32 bytes"))
            .ok_or(SigError::ComponentOutOfRange)?;
        if r.is_zero() || s.is_zero() {
            return Err(SigError::ComponentOutOfRange);
        }
        if s.is_high() {
            return Err(SigError::HighS);
        }
        Ok(Signature { r, s })
    }
}

/// Sign digest `z` with private scalar `sk` using an RFC 6979 nonce.
///
/// The returned signature is low-S canonical. `sk` must be nonzero (enforced
/// by [`super::keys::PrivateKey`] construction).
pub fn sign(z: &[u8; 32], sk: &Scalar) -> Signature {
    sign_impl(z, sk, false)
}

/// Like [`sign`], but grind the nonce until the low-S-normalized
/// signature's effective nonce point has **even** y-parity.
///
/// Low-S normalization replaces `s` by `n − s` when `s` is high, which
/// negates the nonce point the verification equation reconstructs — so
/// the effective `R` is `k·G` when `s` stays, `−k·G` when it flips, and
/// the signer (who sees both `k·G`'s parity and the flip) is the only
/// party that knows the result's parity for free. Retrying until it is
/// even (two expected attempts, each one cheap fixed-base comb
/// multiplication — the analogue of Bitcoin Core's low-R grinding) lets
/// the batch verifier ([`super::batch`]) lift `R` from `r` without a
/// parity hint. Verification is completely unaffected: an even-R
/// signature is an ordinary ECDSA signature, and odd-R signatures from
/// other signers still verify — they just take the batch's slow path.
pub fn sign_even_r(z: &[u8; 32], sk: &Scalar) -> Signature {
    sign_impl(z, sk, true)
}

fn sign_impl(z: &[u8; 32], sk: &Scalar, even_r: bool) -> Signature {
    debug_assert!(!sk.is_zero());
    let z_scalar = Scalar::from_be_bytes_reduced(z);
    let mut h1 = *z;
    loop {
        let k = rfc6979::generate_k(sk, &h1);
        let point = Affine::mul_gen(&k).to_affine();
        let (x, y) = point.coords().expect("k in [1,n) cannot give infinity");
        let r = Scalar::from_be_bytes_reduced(&x.to_be_bytes());
        if r.is_zero() {
            // Astronomically unlikely; retry with a perturbed digest as the
            // RFC's "try again" step.
            h1 = crate::hash::sha256(&h1);
            continue;
        }
        let kinv = k.invert().expect("k nonzero");
        let s = kinv.mul(&z_scalar.add(&r.mul(sk)));
        if s.is_zero() {
            h1 = crate::hash::sha256(&h1);
            continue;
        }
        // Effective-R parity after low-S normalization: `k·G`'s parity,
        // flipped iff the normalization below negates s.
        if even_r && (y.is_odd() ^ s.is_high()) {
            h1 = crate::hash::sha256(&h1);
            continue;
        }
        return Signature {
            r,
            s: s.normalize_s(),
        };
    }
}

/// Verify signature `sig` on digest `z` against public key point `q`.
///
/// Fast path: builds a one-shot odd-multiples table for `q` and runs the
/// interleaved-wNAF pass. Callers verifying many signatures under the same
/// key should build the [`PointTable`] once (see
/// [`super::keys::PreparedPublicKey`]) and call [`verify_prepared`].
///
/// `r`/`s` range checks are [`Signature::from_compact`]'s job; a
/// [`Signature`] carries scalars already known to be in `[0, n)`, and a
/// zero component simply fails the final x-coordinate equation.
pub fn verify(z: &[u8; 32], sig: &Signature, q: &Affine) -> bool {
    if q.is_infinity() || !q.is_on_curve() {
        return false;
    }
    verify_prepared(z, sig, &PointTable::new(q))
}

/// Verify against a precomputed table of the public key's odd multiples.
///
/// Contract: `q_table` must be built from a finite on-curve point — which
/// every key that survives [`super::keys::PublicKey::from_compressed`]
/// parsing is. The final comparison is done in projective form
/// ([`super::point::Jacobian::x_equals_scalar_mod_n`]), eliminating the
/// field inversion the reference implementation spends on `to_affine`.
pub fn verify_prepared(z: &[u8; 32], sig: &Signature, q_table: &PointTable) -> bool {
    let z_scalar = Scalar::from_be_bytes_reduced(z);
    let w = match sig.s.invert() {
        Some(w) => w,
        None => return false,
    };
    let u1 = z_scalar.mul(&w);
    let u2 = sig.r.mul(&w);
    lincomb_gen(&u1, q_table, &u2).x_equals_scalar_mod_n(&sig.r)
}

/// Reference verifier: the pre-fast-path double-and-add implementation,
/// kept verbatim as the differential-testing oracle for [`verify`].
pub fn verify_reference(z: &[u8; 32], sig: &Signature, q: &Affine) -> bool {
    if q.is_infinity() || !q.is_on_curve() {
        return false;
    }
    if sig.r.is_zero() || sig.s.is_zero() {
        return false;
    }
    let z_scalar = Scalar::from_be_bytes_reduced(z);
    let w = match sig.s.invert() {
        Some(w) => w,
        None => return false,
    };
    let u1 = z_scalar.mul(&w);
    let u2 = sig.r.mul(&w);
    // Shamir's trick halves the doubling work of u1·G + u2·Q.
    let point = Affine::generator()
        .to_jacobian()
        .shamir_mul(&u1, &q.to_jacobian(), &u2)
        .to_affine();
    match point.coords() {
        None => false,
        Some((x, _)) => Scalar::from_be_bytes_reduced(&x.to_be_bytes()) == sig.r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha256;
    use crate::hex;

    fn keypair(v: u64) -> (Scalar, Affine) {
        let sk = Scalar::from_u64(v);
        (sk, Affine::generator().mul(&sk))
    }

    #[test]
    fn sign_verify_round_trip() {
        let (sk, pk) = keypair(42);
        let z = sha256(b"pay alice 5 coins");
        let sig = sign(&z, &sk);
        assert!(verify(&z, &sig, &pk));
    }

    #[test]
    fn rejects_wrong_message() {
        let (sk, pk) = keypair(42);
        let sig = sign(&sha256(b"pay alice 5 coins"), &sk);
        assert!(!verify(&sha256(b"pay alice 500 coins"), &sig, &pk));
    }

    #[test]
    fn rejects_wrong_key() {
        let (sk, _) = keypair(42);
        let (_, other_pk) = keypair(43);
        let z = sha256(b"msg");
        let sig = sign(&z, &sk);
        assert!(!verify(&z, &sig, &other_pk));
    }

    #[test]
    fn rejects_tampered_signature() {
        let (sk, pk) = keypair(7);
        let z = sha256(b"msg");
        let sig = sign(&z, &sk);
        let mut bad = sig;
        bad.s = bad.s.add(&Scalar::ONE);
        assert!(!verify(&z, &bad, &pk));
        let mut bad_r = sig;
        bad_r.r = bad_r.r.add(&Scalar::ONE);
        assert!(!verify(&z, &bad_r, &pk));
    }

    #[test]
    fn rejects_infinity_key() {
        let (sk, _) = keypair(7);
        let z = sha256(b"msg");
        let sig = sign(&z, &sk);
        assert!(!verify(&z, &sig, &Affine::Infinity));
    }

    #[test]
    fn signature_is_low_s() {
        for i in 1..20u64 {
            let (sk, _) = keypair(i);
            let sig = sign(&sha256(&i.to_le_bytes()), &sk);
            assert!(!sig.s.is_high(), "key {i} produced high-S");
        }
    }

    #[test]
    fn deterministic_signatures() {
        let (sk, _) = keypair(99);
        let z = sha256(b"same message");
        assert_eq!(sign(&z, &sk), sign(&z, &sk));
    }

    #[test]
    fn compact_round_trip() {
        let (sk, pk) = keypair(5);
        let z = sha256(b"compact");
        let sig = sign(&z, &sk);
        let parsed = Signature::from_compact(&sig.to_compact()).unwrap();
        assert_eq!(parsed, sig);
        assert!(verify(&z, &parsed, &pk));
    }

    #[test]
    fn compact_rejects_bad_encodings() {
        assert_eq!(
            Signature::from_compact(&[0u8; 63]),
            Err(SigError::BadLength)
        );
        // All zero: r = s = 0.
        assert_eq!(
            Signature::from_compact(&[0u8; 64]),
            Err(SigError::ComponentOutOfRange)
        );
        // High-S: take a valid signature and flip s to n - s.
        let (sk, _) = keypair(5);
        let sig = sign(&sha256(b"x"), &sk);
        let mut bytes = sig.to_compact();
        bytes[32..].copy_from_slice(&sig.s.neg().to_be_bytes());
        assert_eq!(Signature::from_compact(&bytes), Err(SigError::HighS));
    }

    #[test]
    fn compact_rejects_out_of_range_components() {
        use super::super::scalar::N;
        use crate::u256::U256;
        let (sk, pk) = keypair(5);
        let z = sha256(b"range");
        let sig = sign(&z, &sk);

        // r = n and s = n: exactly the order, one past the valid range.
        let mut r_eq_n = sig.to_compact();
        r_eq_n[..32].copy_from_slice(&N.to_be_bytes());
        assert_eq!(
            Signature::from_compact(&r_eq_n),
            Err(SigError::ComponentOutOfRange)
        );
        let mut s_eq_n = sig.to_compact();
        s_eq_n[32..].copy_from_slice(&N.to_be_bytes());
        assert_eq!(
            Signature::from_compact(&s_eq_n),
            Err(SigError::ComponentOutOfRange)
        );
        // r all-ones (≫ n) and zero-in-one-component variants.
        let mut r_max = sig.to_compact();
        r_max[..32].copy_from_slice(&[0xff; 32]);
        assert_eq!(
            Signature::from_compact(&r_max),
            Err(SigError::ComponentOutOfRange)
        );
        let mut r_zero = sig.to_compact();
        r_zero[..32].copy_from_slice(&[0; 32]);
        assert_eq!(
            Signature::from_compact(&r_zero),
            Err(SigError::ComponentOutOfRange)
        );
        let mut s_zero = sig.to_compact();
        s_zero[32..].copy_from_slice(&[0; 32]);
        assert_eq!(
            Signature::from_compact(&s_zero),
            Err(SigError::ComponentOutOfRange)
        );
        // r = n − 1 is in range: the parse must accept it (the signature
        // is then simply invalid for this digest).
        let n_minus_1 = Scalar(N.overflowing_sub(&U256::ONE).0);
        let mut r_edge = sig.to_compact();
        r_edge[..32].copy_from_slice(&n_minus_1.to_be_bytes());
        let parsed = Signature::from_compact(&r_edge).expect("n-1 is in range");
        assert!(!verify(&z, &parsed, &pk));
    }

    #[test]
    fn even_r_signatures_verify_and_have_even_nonce_point() {
        use super::super::field::Fe;
        for i in 1..30u64 {
            let (sk, pk) = keypair(i);
            let z = sha256(&i.to_be_bytes());
            let sig = sign_even_r(&z, &sk);
            assert!(verify(&z, &sig, &pk), "key {i}");
            assert!(!sig.s.is_high(), "key {i} produced high-S");
            // The effective nonce point must lift from r at even parity
            // and satisfy R = u·G + v·Q.
            let r_point = Affine::lift_x(Fe(sig.r.0), false).expect("r lifts");
            let w = sig.s.invert().unwrap();
            let u = Scalar::from_be_bytes_reduced(&z).mul(&w);
            let v = sig.r.mul(&w);
            let rhs = Affine::mul_gen(&u)
                .add_jacobian(&pk.to_jacobian().mul(&v))
                .to_affine();
            assert_eq!(r_point, rhs, "key {i}: even-parity lift is not R");
        }
    }

    #[test]
    fn even_r_does_not_change_plain_sign() {
        // `sign` must stay byte-identical (the Satoshi Nakamoto vector
        // below pins it); `sign_even_r` may differ only by nonce choice.
        let (sk, pk) = keypair(17);
        let z = sha256(b"two signing modes");
        let plain = sign(&z, &sk);
        let even = sign_even_r(&z, &sk);
        assert!(verify(&z, &plain, &pk));
        assert!(verify(&z, &even, &pk));
    }

    #[test]
    fn fast_and_reference_verify_agree() {
        let (sk, pk) = keypair(42);
        let z = sha256(b"parity");
        let sig = sign(&z, &sk);
        assert!(verify(&z, &sig, &pk));
        assert!(verify_reference(&z, &sig, &pk));
        let mut bad = sig;
        bad.s = bad.s.add(&Scalar::ONE);
        assert_eq!(verify(&z, &bad, &pk), verify_reference(&z, &bad, &pk));
        assert!(!verify(&z, &bad, &pk));
    }

    #[test]
    fn known_vector_satoshi_nakamoto() {
        // secp256k1 + RFC 6979 vector reproduced across many bitcoin
        // libraries: sk = 1, message "Satoshi Nakamoto".
        let sk = Scalar::from_u64(1);
        let sig = sign(&sha256(b"Satoshi Nakamoto"), &sk);
        assert_eq!(
            hex::encode(&sig.r.to_be_bytes()),
            "934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8"
        );
        assert_eq!(
            hex::encode(&sig.s.to_be_bytes()),
            "2442ce9d2b916064108014783e923ec36b49743e2ffa1c4496f01a512aafd9e5"
        );
    }
}
