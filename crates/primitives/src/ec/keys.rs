//! Key types: private scalars and SEC1-compressed public keys.

use super::ecdsa::{self, SigError, Signature};
use super::field::Fe;
use super::point::{Affine, PointTable};
use super::scalar::Scalar;
use crate::hash::{hash160, Hash160};

/// A private key — a nonzero scalar.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PrivateKey(Scalar);

impl PrivateKey {
    /// Construct from a scalar; `None` if zero.
    pub fn from_scalar(s: Scalar) -> Option<PrivateKey> {
        if s.is_zero() {
            None
        } else {
            Some(PrivateKey(s))
        }
    }

    /// Construct from 32 big-endian bytes; `None` if zero or ≥ n.
    pub fn from_be_bytes(b: &[u8; 32]) -> Option<PrivateKey> {
        Scalar::from_be_bytes(b).and_then(PrivateKey::from_scalar)
    }

    /// Deterministic key for tests and the workload generator: hashes the
    /// seed until it lands in `[1, n)`.
    pub fn from_seed(seed: u64) -> PrivateKey {
        let mut digest = crate::hash::sha256(&seed.to_le_bytes());
        loop {
            if let Some(k) = PrivateKey::from_be_bytes(&digest) {
                return k;
            }
            digest = crate::hash::sha256(&digest);
        }
    }

    /// The corresponding public key (`sk · G`, via the fixed-base comb).
    pub fn public_key(&self) -> PublicKey {
        PublicKey(Affine::mul_gen(&self.0).to_affine())
    }

    /// Sign a 32-byte digest.
    ///
    /// Uses the even-R convention ([`ecdsa::sign_even_r`]) so signatures
    /// produced through the key API batch-verify on the fast path; the
    /// result is a perfectly ordinary low-S ECDSA signature either way.
    pub fn sign(&self, digest: &[u8; 32]) -> Signature {
        ecdsa::sign_even_r(digest, &self.0)
    }

    /// The underlying scalar (for tests).
    pub fn scalar(&self) -> &Scalar {
        &self.0
    }
}

impl std::fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the secret.
        write!(f, "PrivateKey(..)")
    }
}

/// A public key — a finite curve point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublicKey(Affine);

/// Error decoding a compressed public key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PubKeyError {
    /// Encoding is not 33 bytes with a 0x02/0x03 prefix.
    BadEncoding,
    /// The x-coordinate is not on the curve (or ≥ p).
    NotOnCurve,
}

impl std::fmt::Display for PubKeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PubKeyError::BadEncoding => write!(f, "bad compressed public key encoding"),
            PubKeyError::NotOnCurve => write!(f, "x-coordinate not on curve"),
        }
    }
}

impl std::error::Error for PubKeyError {}

impl PublicKey {
    /// SEC1 compressed encoding: parity prefix (0x02 even / 0x03 odd) plus
    /// the 32-byte x-coordinate.
    pub fn to_compressed(&self) -> [u8; 33] {
        let (x, y) = self.0.coords().expect("public keys are finite");
        let mut out = [0u8; 33];
        out[0] = if y.is_odd() { 0x03 } else { 0x02 };
        out[1..].copy_from_slice(&x.to_be_bytes());
        out
    }

    /// Decode a SEC1 compressed public key.
    pub fn from_compressed(bytes: &[u8]) -> Result<PublicKey, PubKeyError> {
        if bytes.len() != 33 || (bytes[0] != 0x02 && bytes[0] != 0x03) {
            return Err(PubKeyError::BadEncoding);
        }
        let x = Fe::from_be_bytes(bytes[1..].try_into().expect("32 bytes"))
            .ok_or(PubKeyError::NotOnCurve)?;
        let point = Affine::lift_x(x, bytes[0] == 0x03).ok_or(PubKeyError::NotOnCurve)?;
        Ok(PublicKey(point))
    }

    /// `HASH160` of the compressed encoding — the pay-to-pubkey-hash
    /// address.
    pub fn address_hash(&self) -> Hash160 {
        hash160(&self.to_compressed())
    }

    /// Verify a signature over `digest`.
    pub fn verify(&self, digest: &[u8; 32], sig: &Signature) -> bool {
        ecdsa::verify(digest, sig, &self.0)
    }

    /// Verify a compact-encoded signature over `digest`.
    pub fn verify_compact(&self, digest: &[u8; 32], sig_bytes: &[u8]) -> Result<bool, SigError> {
        let sig = Signature::from_compact(sig_bytes)?;
        Ok(ecdsa::verify(digest, &sig, &self.0))
    }

    /// The underlying curve point.
    pub fn point(&self) -> &Affine {
        &self.0
    }

    /// Precompute the odd-multiples table for repeated verification under
    /// this key.
    pub fn prepare(&self) -> PreparedPublicKey {
        PreparedPublicKey {
            key: *self,
            table: PointTable::new(&self.0),
        }
    }
}

/// A public key bundled with its precomputed [`PointTable`].
///
/// Building the table costs one doubling, seven additions and a batch
/// normalization — about a sixth of a verification — so it pays for itself
/// as soon as a key verifies more than one signature. Block validation
/// caches these per block because workloads reuse signer keys heavily.
#[derive(Clone, Debug)]
pub struct PreparedPublicKey {
    key: PublicKey,
    table: PointTable,
}

impl PreparedPublicKey {
    /// The plain public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.key
    }

    /// The precomputed odd-multiples table (batch verification feeds it
    /// straight into the shared multi-scalar ladder).
    pub(crate) fn table(&self) -> &PointTable {
        &self.table
    }

    /// Verify a signature over `digest` using the cached table.
    pub fn verify(&self, digest: &[u8; 32], sig: &Signature) -> bool {
        ecdsa::verify_prepared(digest, sig, &self.table)
    }

    /// Verify a compact-encoded signature over `digest`.
    pub fn verify_compact(&self, digest: &[u8; 32], sig_bytes: &[u8]) -> Result<bool, SigError> {
        let sig = Signature::from_compact(sig_bytes)?;
        Ok(self.verify(digest, &sig))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha256;
    use crate::hex;

    #[test]
    fn pubkey_of_one_is_generator() {
        let pk = PrivateKey::from_seed(0); // arbitrary
        assert!(pk.public_key().point().is_on_curve());

        let one = PrivateKey::from_scalar(Scalar::from_u64(1)).unwrap();
        assert_eq!(
            hex::encode(&one.public_key().to_compressed()),
            "0279be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"
        );
    }

    #[test]
    fn compressed_round_trip() {
        for seed in 0..10u64 {
            let pk = PrivateKey::from_seed(seed).public_key();
            let parsed = PublicKey::from_compressed(&pk.to_compressed()).unwrap();
            assert_eq!(parsed, pk, "seed {seed}");
        }
    }

    #[test]
    fn from_compressed_rejects_garbage() {
        assert_eq!(
            PublicKey::from_compressed(&[0u8; 33]),
            Err(PubKeyError::BadEncoding)
        );
        assert_eq!(
            PublicKey::from_compressed(&[2u8; 10]),
            Err(PubKeyError::BadEncoding)
        );
        // 0x02 prefix but x ≥ p.
        let mut bad = [0xffu8; 33];
        bad[0] = 0x02;
        assert_eq!(
            PublicKey::from_compressed(&bad),
            Err(PubKeyError::NotOnCurve)
        );
    }

    #[test]
    fn zero_private_key_rejected() {
        assert!(PrivateKey::from_scalar(Scalar::ZERO).is_none());
        assert!(PrivateKey::from_be_bytes(&[0u8; 32]).is_none());
    }

    #[test]
    fn sign_verify_through_key_api() {
        let sk = PrivateKey::from_seed(77);
        let pk = sk.public_key();
        let z = sha256(b"spend output 3");
        let sig = sk.sign(&z);
        assert!(pk.verify(&z, &sig));
        assert!(pk.verify_compact(&z, &sig.to_compact()).unwrap());
        assert!(!pk.verify(&sha256(b"other"), &sig));
    }

    #[test]
    fn prepared_key_verifies_like_plain_key() {
        let sk = PrivateKey::from_seed(8);
        let pk = sk.public_key();
        let prepared = pk.prepare();
        assert_eq!(prepared.public_key(), &pk);
        let z = sha256(b"prepared");
        let sig = sk.sign(&z);
        assert!(prepared.verify(&z, &sig));
        assert!(prepared.verify_compact(&z, &sig.to_compact()).unwrap());
        assert!(!prepared.verify(&sha256(b"other"), &sig));
        assert!(prepared.verify_compact(&z, &[0u8; 64]).is_err());
    }

    #[test]
    fn address_hash_is_stable() {
        let pk = PrivateKey::from_seed(1).public_key();
        assert_eq!(pk.address_hash(), hash160(&pk.to_compressed()));
    }

    #[test]
    fn debug_does_not_leak_secret() {
        let sk = PrivateKey::from_seed(3);
        assert_eq!(format!("{sk:?}"), "PrivateKey(..)");
    }
}
