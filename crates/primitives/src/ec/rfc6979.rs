//! Deterministic ECDSA nonces per RFC 6979 (HMAC-SHA256, qlen = 256).
//!
//! Deterministic nonces make transaction signing in the workload generator
//! reproducible from the seed alone, and remove any dependence on an OS
//! entropy source.

use super::scalar::Scalar;
use crate::hash::hmac_sha256;

/// Generate the nonce `k` for private key `x` and message digest `h1`
/// (already hashed, 32 bytes). Always returns a scalar in `[1, n)`.
pub fn generate_k(x: &Scalar, h1: &[u8; 32]) -> Scalar {
    // For a 256-bit group order, bits2octets(h1) = int2octets(h1 mod n).
    let h1_reduced = Scalar::from_be_bytes_reduced(h1).to_be_bytes();
    let x_bytes = x.to_be_bytes();

    let mut v = [0x01u8; 32];
    let mut k = [0x00u8; 32];

    // K = HMAC_K(V || 0x00 || x || h1)
    let mut msg = Vec::with_capacity(32 + 1 + 32 + 32);
    msg.extend_from_slice(&v);
    msg.push(0x00);
    msg.extend_from_slice(&x_bytes);
    msg.extend_from_slice(&h1_reduced);
    k = hmac_sha256(&k, &msg);
    v = hmac_sha256(&k, &v);

    // K = HMAC_K(V || 0x01 || x || h1)
    msg.clear();
    msg.extend_from_slice(&v);
    msg.push(0x01);
    msg.extend_from_slice(&x_bytes);
    msg.extend_from_slice(&h1_reduced);
    k = hmac_sha256(&k, &msg);
    v = hmac_sha256(&k, &v);

    loop {
        v = hmac_sha256(&k, &v);
        if let Some(candidate) = Scalar::from_be_bytes(&v) {
            if !candidate.is_zero() {
                return candidate;
            }
        }
        // Candidate out of range: K = HMAC_K(V || 0x00), V = HMAC_K(V).
        msg.clear();
        msg.extend_from_slice(&v);
        msg.push(0x00);
        k = hmac_sha256(&k, &msg);
        v = hmac_sha256(&k, &v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha256;
    use crate::hex;

    #[test]
    fn deterministic() {
        let x = Scalar::from_u64(12345);
        let h = sha256(b"message");
        assert_eq!(
            generate_k(&x, &h).to_be_bytes(),
            generate_k(&x, &h).to_be_bytes()
        );
    }

    #[test]
    fn different_inputs_give_different_k() {
        let x = Scalar::from_u64(12345);
        let h1 = sha256(b"message one");
        let h2 = sha256(b"message two");
        assert_ne!(generate_k(&x, &h1), generate_k(&x, &h2));
        assert_ne!(
            generate_k(&Scalar::from_u64(1), &h1),
            generate_k(&Scalar::from_u64(2), &h1)
        );
    }

    #[test]
    fn known_vector_secp256k1_key1() {
        // Widely reproduced secp256k1 RFC 6979 vector (e.g. in the Trezor
        // and python-ecdsa test suites): x = 1, message "Satoshi Nakamoto".
        let x = Scalar::from_u64(1);
        let h = sha256(b"Satoshi Nakamoto");
        let k = generate_k(&x, &h);
        assert_eq!(
            hex::encode(&k.to_be_bytes()),
            "8f8a276c19f4149656b280621e358cce24f5f52542772691ee69063b74f15d15"
        );
    }

    #[test]
    fn k_is_never_zero() {
        for i in 1..50u64 {
            let x = Scalar::from_u64(i);
            let h = sha256(&i.to_le_bytes());
            assert!(!generate_k(&x, &h).is_zero());
        }
    }
}
