//! Arithmetic modulo the secp256k1 group order `n`.
//!
//! `n = 2^256 - Δ` with a 129-bit `Δ`, so 512-bit products reduce by
//! repeated folding `H·2^256 + L ≡ H·Δ + L (mod n)`; three folds suffice.

use crate::u256::U256;

/// The group order `n`.
pub const N: U256 = U256::from_be_limbs([
    0xFFFFFFFFFFFFFFFF,
    0xFFFFFFFFFFFFFFFE,
    0xBAAEDCE6AF48A03B,
    0xBFD25E8CD0364141,
]);

/// `Δ = 2^256 - n` (129 bits).
const DELTA: U256 = U256::from_be_limbs([
    0x0000000000000000,
    0x0000000000000001,
    0x45512319_50B75FC4,
    0x402DA173_2FC9BEBF,
]);

/// `(n - 1) / 2`, the low-S threshold.
pub const HALF_N: U256 = U256::from_be_limbs([
    0x7FFFFFFFFFFFFFFF,
    0xFFFFFFFFFFFFFFFF,
    0x5D576E7357A4501D,
    0xDFE92F46681B20A0,
]);

/// An integer modulo `n`, always in `[0, n)`.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct Scalar(pub U256);

/// 512-bit addition, little-endian limbs.
fn add512(a: &[u64; 8], b: &[u64; 8]) -> [u64; 8] {
    let mut out = [0u64; 8];
    let mut carry = 0u64;
    for i in 0..8 {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry);
        out[i] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    debug_assert_eq!(carry, 0, "512-bit fold addition cannot carry out");
    out
}

/// Reduce a 512-bit little-endian value modulo `n`.
fn reduce512(w: &[u64; 8]) -> Scalar {
    let mut v = *w;
    // Each fold replaces H·2^256 + L with H·Δ + L; since Δ < 2^129, the high
    // half shrinks from 256 → 129+ε → 3 bits → 0 in three folds.
    loop {
        let h = U256 {
            limbs: [v[4], v[5], v[6], v[7]],
        };
        if h.is_zero() {
            break;
        }
        let l = [v[0], v[1], v[2], v[3], 0, 0, 0, 0];
        let hd = h.widening_mul(&DELTA);
        v = add512(&l, &hd);
    }
    let mut r = U256 {
        limbs: [v[0], v[1], v[2], v[3]],
    };
    while r >= N {
        r = r.overflowing_sub(&N).0;
    }
    Scalar(r)
}

impl Scalar {
    pub const ZERO: Scalar = Scalar(U256::ZERO);
    pub const ONE: Scalar = Scalar(U256::ONE);

    /// Construct from a small integer.
    pub fn from_u64(v: u64) -> Scalar {
        Scalar(U256::from_u64(v))
    }

    /// Parse 32 big-endian bytes; `None` if the value is ≥ n (the strict
    /// check used for private keys and signature components).
    pub fn from_be_bytes(b: &[u8; 32]) -> Option<Scalar> {
        let v = U256::from_be_bytes(b);
        if v >= N {
            None
        } else {
            Some(Scalar(v))
        }
    }

    /// Parse 32 big-endian bytes, reducing modulo n (the `bits2int` mapping
    /// used for message digests).
    pub fn from_be_bytes_reduced(b: &[u8; 32]) -> Scalar {
        let mut v = U256::from_be_bytes(b);
        while v >= N {
            v = v.overflowing_sub(&N).0;
        }
        Scalar(v)
    }

    /// Serialize as 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// True if `self > (n-1)/2` — a "high-S" value that [`normalize_s`]
    /// would flip.
    ///
    /// [`normalize_s`]: Scalar::normalize_s
    pub fn is_high(&self) -> bool {
        self.0 > HALF_N
    }

    /// Canonicalize to the low-S form used by the signature encoding.
    pub fn normalize_s(&self) -> Scalar {
        if self.is_high() {
            self.neg()
        } else {
            *self
        }
    }

    pub fn add(&self, other: &Scalar) -> Scalar {
        let (mut s, carry) = self.0.overflowing_add(&other.0);
        if carry || s >= N {
            s = s.overflowing_sub(&N).0;
        }
        Scalar(s)
    }

    pub fn neg(&self) -> Scalar {
        if self.is_zero() {
            *self
        } else {
            Scalar(N.overflowing_sub(&self.0).0)
        }
    }

    pub fn mul(&self, other: &Scalar) -> Scalar {
        reduce512(&self.0.widening_mul(&other.0))
    }

    /// `self^e mod n` by square-and-multiply.
    pub fn pow(&self, e: &U256) -> Scalar {
        let mut acc = Scalar::ONE;
        for i in (0..e.bits()).rev() {
            acc = acc.mul(&acc);
            if e.bit(i) {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Multiplicative inverse by binary extended GCD; `None` for zero.
    /// Replaces the Fermat exponentiation on the ECDSA hot path (one
    /// inversion per sign and per verify); [`Scalar::invert_fermat`] stays
    /// as the differential reference.
    pub fn invert(&self) -> Option<Scalar> {
        self.0.inv_mod(&N).map(Scalar)
    }

    /// Reference inverse (`a^(n-2)`); `None` for zero. Exists to pin
    /// [`Scalar::invert`] in differential tests.
    pub fn invert_fermat(&self) -> Option<Scalar> {
        if self.is_zero() {
            return None;
        }
        let n_minus_2 = N.overflowing_sub(&U256::from_u64(2)).0;
        Some(self.pow(&n_minus_2))
    }

    /// Width-`w` non-adjacent form: signed digits, least significant first,
    /// each either zero or odd with `|d| < 2^(w-1)`, and any two nonzero
    /// digits separated by at least `w - 1` zeros. Reconstruction:
    /// `self = Σ digits[i]·2^i`. The sparse signed digits are what let the
    /// Strauss pass in [`super::point::lincomb_gen`] skip ~`w/(w+1)` of the
    /// additions a plain double-and-add ladder performs.
    pub fn wnaf(&self, w: u32) -> Vec<i32> {
        debug_assert!((2..=16).contains(&w), "window width out of range");
        let mut k = self.0;
        // n < 2^256 and each round-up adds < 2^(w-1), so k never overflows;
        // the digit string can still be one longer than k's bit length.
        let mut digits = Vec::with_capacity(self.0.bits() + 1);
        let window = 1u64 << w;
        let sign_bound = 1i64 << (w - 1);
        while !k.is_zero() {
            if k.limbs[0] & 1 == 1 {
                let low = (k.limbs[0] & (window - 1)) as i64;
                let d = if low >= sign_bound {
                    low - window as i64
                } else {
                    low
                };
                digits.push(d as i32);
                if d >= 0 {
                    k = k.overflowing_sub(&U256::from_u64(d as u64)).0;
                } else {
                    let (sum, carry) = k.overflowing_add(&U256::from_u64(d.unsigned_abs()));
                    debug_assert!(!carry, "wNAF round-up cannot overflow 256 bits");
                    k = sum;
                }
            } else {
                digits.push(0);
            }
            k = k.shr1();
        }
        digits
    }
}

impl std::fmt::Debug for Scalar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Scalar(0x{})", crate::hex::encode(&self.to_be_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u64) -> Scalar {
        Scalar::from_u64(v)
    }

    #[test]
    fn delta_is_2_256_minus_n() {
        // n + Δ must overflow to exactly zero.
        let (sum, carry) = N.overflowing_add(&DELTA);
        assert!(carry);
        assert!(sum.is_zero());
    }

    #[test]
    fn half_n_is_half() {
        // 2·HALF_N + 1 == n
        let (d, carry) = HALF_N.overflowing_add(&HALF_N);
        assert!(!carry);
        assert_eq!(d.overflowing_add(&U256::ONE).0, N);
    }

    #[test]
    fn add_wraps() {
        let n_minus_1 = Scalar(N.overflowing_sub(&U256::ONE).0);
        assert_eq!(n_minus_1.add(&Scalar::ONE), Scalar::ZERO);
    }

    #[test]
    fn mul_reduces() {
        let n_minus_1 = Scalar(N.overflowing_sub(&U256::ONE).0);
        // (-1)^2 = 1
        assert_eq!(n_minus_1.mul(&n_minus_1), Scalar::ONE);
    }

    #[test]
    fn invert_round_trip() {
        for v in [1u64, 2, 3, 12345, u64::MAX] {
            let a = s(v);
            assert_eq!(a.mul(&a.invert().unwrap()), Scalar::ONE, "v = {v}");
        }
        assert!(Scalar::ZERO.invert().is_none());
    }

    #[test]
    fn neg_is_additive_inverse() {
        let a = s(999);
        assert_eq!(a.add(&a.neg()), Scalar::ZERO);
    }

    #[test]
    fn normalize_s_flips_high_values() {
        let high = Scalar(N.overflowing_sub(&U256::ONE).0); // n-1 ≡ -1, high
        assert!(high.is_high());
        let low = high.normalize_s();
        assert!(!low.is_high());
        assert_eq!(low, Scalar::ONE);
        // Already-low values are untouched.
        assert_eq!(s(5).normalize_s(), s(5));
    }

    #[test]
    fn from_be_bytes_bounds() {
        assert!(Scalar::from_be_bytes(&N.to_be_bytes()).is_none());
        assert!(Scalar::from_be_bytes(&[0xff; 32]).is_none());
        // Reduced variant always succeeds: 2^256-1 mod n.
        let r = Scalar::from_be_bytes_reduced(&[0xff; 32]);
        assert!(r.0 < N);
        // 2^256 - 1 = n + (Δ - 1)  →  reduced = Δ - 1
        assert_eq!(r.0, DELTA.overflowing_sub(&U256::ONE).0);
    }

    #[test]
    fn reduce512_small_values_untouched() {
        let got = Scalar::from_be_bytes_reduced(&U256::from_u64(42).to_be_bytes());
        assert_eq!(got, s(42));
    }

    #[test]
    fn invert_matches_fermat_reference() {
        for v in [1u64, 2, 3, 12345, u64::MAX] {
            let a = s(v);
            assert_eq!(a.invert(), a.invert_fermat(), "v = {v}");
        }
        let n_minus_1 = Scalar(N.overflowing_sub(&U256::ONE).0);
        assert_eq!(n_minus_1.invert(), n_minus_1.invert_fermat());
        assert!(Scalar::ZERO.invert_fermat().is_none());
    }

    /// Rebuild Σ digits[i]·2^i with scalar arithmetic and compare.
    fn wnaf_reconstructs(a: &Scalar, w: u32) {
        let digits = a.wnaf(w);
        let two = s(2);
        let mut acc = Scalar::ZERO;
        let mut pow2 = Scalar::ONE;
        let bound = 1i32 << (w - 1);
        let mut last_nonzero: Option<usize> = None;
        for (i, &d) in digits.iter().enumerate() {
            if d != 0 {
                assert!(d % 2 != 0, "nonzero digit must be odd");
                assert!(d.abs() < bound, "digit out of window");
                if let Some(j) = last_nonzero {
                    assert!(i - j >= w as usize, "nonzero digits too close");
                }
                last_nonzero = Some(i);
                let m = s(d.unsigned_abs() as u64);
                let term = pow2.mul(&m);
                acc = if d > 0 {
                    acc.add(&term)
                } else {
                    acc.add(&term.neg())
                };
            }
            pow2 = pow2.mul(&two);
        }
        assert_eq!(&acc, a, "wnaf({w}) reconstruction failed");
    }

    #[test]
    fn wnaf_reconstruction_and_digit_bounds() {
        let n_minus_1 = Scalar(N.overflowing_sub(&U256::ONE).0);
        let samples = [
            Scalar::ONE,
            s(2),
            s(0xdead_beef),
            s(u64::MAX),
            Scalar(HALF_N),
            n_minus_1,
            Scalar::from_be_bytes_reduced(&[0xa5; 32]),
        ];
        for a in &samples {
            for w in [2, 4, 5, 8] {
                wnaf_reconstructs(a, w);
            }
        }
        assert!(Scalar::ZERO.wnaf(5).is_empty());
    }
}
