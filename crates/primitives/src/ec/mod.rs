//! secp256k1 elliptic-curve cryptography, implemented from scratch.
//!
//! Layered as: [`field`] (arithmetic mod the base prime) and [`scalar`]
//! (arithmetic mod the group order) over [`crate::u256::U256`]; [`point`]
//! (Jacobian group law, scalar multiplication); [`ecdsa`] (sign/verify with
//! low-S canonical signatures); [`rfc6979`] (deterministic nonces); and
//! [`keys`] (the `PrivateKey`/`PublicKey` API the rest of the workspace
//! uses).

pub mod batch;
pub mod ecdsa;
pub mod field;
mod glv;
pub mod keys;
pub mod point;
pub mod rfc6979;
pub mod scalar;

pub use batch::{BatchOutcome, BatchStats, BatchVerifier};
pub use ecdsa::{SigError, Signature};
pub use keys::{PreparedPublicKey, PrivateKey, PubKeyError, PublicKey};
pub use point::{lincomb_gen, multi_scalar_mul, Affine, Jacobian, MsmTerm, PointTable};
pub use scalar::Scalar;
