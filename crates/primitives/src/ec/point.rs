//! secp256k1 group arithmetic: `y² = x³ + 7` over `F_p`.
//!
//! Points are manipulated in Jacobian coordinates (`X/Z²`, `Y/Z³`) so that
//! scalar multiplication needs a single field inversion at the end. The
//! implementation is straightforward double-and-add: verification speed is
//! deliberately "honest work", since Script Validation cost drives the
//! paper's Fig. 16b/17b breakdowns.

use super::field::Fe;
use super::scalar::Scalar;
use crate::u256::U256;

/// Affine curve point, or the point at infinity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Affine {
    /// The identity element.
    Infinity,
    /// A finite point `(x, y)`.
    Point { x: Fe, y: Fe },
}

/// Jacobian-coordinate point; `z = 0` encodes infinity.
#[derive(Clone, Copy, Debug)]
pub struct Jacobian {
    x: Fe,
    y: Fe,
    z: Fe,
}

/// Generator x-coordinate.
const GX: U256 = U256::from_be_limbs([
    0x79BE667EF9DCBBAC,
    0x55A06295CE870B07,
    0x029BFCDB2DCE28D9,
    0x59F2815B16F81798,
]);

/// Generator y-coordinate.
const GY: U256 = U256::from_be_limbs([
    0x483ADA7726A3C465,
    0x5DA4FBFC0E1108A8,
    0xFD17B448A6855419,
    0x9C47D08FFB10D4B8,
]);

impl Affine {
    /// The standard generator `G`.
    pub fn generator() -> Affine {
        Affine::Point {
            x: Fe(GX),
            y: Fe(GY),
        }
    }

    pub fn is_infinity(&self) -> bool {
        matches!(self, Affine::Infinity)
    }

    /// The affine coordinates, or `None` for infinity.
    pub fn coords(&self) -> Option<(Fe, Fe)> {
        match self {
            Affine::Infinity => None,
            Affine::Point { x, y } => Some((*x, *y)),
        }
    }

    /// Check the curve equation `y² = x³ + 7`.
    pub fn is_on_curve(&self) -> bool {
        match self {
            Affine::Infinity => true,
            Affine::Point { x, y } => {
                let lhs = y.square();
                let rhs = x.square().mul(x).add(&Fe::from_u64(7));
                lhs == rhs
            }
        }
    }

    /// Negate (reflect across the x-axis).
    pub fn neg(&self) -> Affine {
        match self {
            Affine::Infinity => Affine::Infinity,
            Affine::Point { x, y } => Affine::Point { x: *x, y: y.neg() },
        }
    }

    /// Lift to Jacobian coordinates.
    pub fn to_jacobian(&self) -> Jacobian {
        match self {
            Affine::Infinity => Jacobian::infinity(),
            Affine::Point { x, y } => Jacobian {
                x: *x,
                y: *y,
                z: Fe::ONE,
            },
        }
    }

    /// Reconstruct the point with x-coordinate `x` and y-parity `odd`, if it
    /// lies on the curve (compressed-point decoding).
    pub fn lift_x(x: Fe, odd: bool) -> Option<Affine> {
        let y2 = x.square().mul(&x).add(&Fe::from_u64(7));
        let mut y = y2.sqrt()?;
        if y.is_odd() != odd {
            y = y.neg();
        }
        Some(Affine::Point { x, y })
    }

    /// `k * self` via Jacobian double-and-add.
    pub fn mul(&self, k: &Scalar) -> Affine {
        self.to_jacobian().mul(k).to_affine()
    }

    /// `a + b` in affine terms (used by verification: `u1·G + u2·Q`).
    pub fn add(&self, other: &Affine) -> Affine {
        self.to_jacobian()
            .add_jacobian(&other.to_jacobian())
            .to_affine()
    }
}

impl Jacobian {
    pub fn infinity() -> Jacobian {
        Jacobian {
            x: Fe::ONE,
            y: Fe::ONE,
            z: Fe::ZERO,
        }
    }

    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (curve has `a = 0`).
    pub fn double(&self) -> Jacobian {
        if self.is_infinity() || self.y.is_zero() {
            return Jacobian::infinity();
        }
        let y2 = self.y.square();
        let s = self.x.mul(&y2).mul(&Fe::from_u64(4));
        let m = self.x.square().mul(&Fe::from_u64(3));
        let x3 = m.square().sub(&s).sub(&s);
        let y4_8 = y2.square().mul(&Fe::from_u64(8));
        let y3 = m.mul(&s.sub(&x3)).sub(&y4_8);
        let z3 = self.y.mul(&self.z).mul(&Fe::from_u64(2));
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian addition.
    pub fn add_jacobian(&self, other: &Jacobian) -> Jacobian {
        if self.is_infinity() {
            return *other;
        }
        if other.is_infinity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = self.x.mul(&z2z2);
        let u2 = other.x.mul(&z1z1);
        let s1 = self.y.mul(&z2z2).mul(&other.z);
        let s2 = other.y.mul(&z1z1).mul(&self.z);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Jacobian::infinity();
        }
        let h = u2.sub(&u1);
        let r = s2.sub(&s1);
        let h2 = h.square();
        let h3 = h2.mul(&h);
        let u1h2 = u1.mul(&h2);
        let x3 = r.square().sub(&h3).sub(&u1h2).sub(&u1h2);
        let y3 = r.mul(&u1h2.sub(&x3)).sub(&s1.mul(&h3));
        let z3 = h.mul(&self.z).mul(&other.z);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// `k * self`, MSB-first double-and-add.
    pub fn mul(&self, k: &Scalar) -> Jacobian {
        let mut acc = Jacobian::infinity();
        let bits = k.0.bits();
        for i in (0..bits).rev() {
            acc = acc.double();
            if k.0.bit(i) {
                acc = acc.add_jacobian(self);
            }
        }
        acc
    }

    /// Shamir's trick: `a·self + b·other` in a single double-and-add pass
    /// (ECDSA verification computes `u1·G + u2·Q`; the shared pass does
    /// one doubling ladder instead of two).
    pub fn shamir_mul(&self, a: &Scalar, other: &Jacobian, b: &Scalar) -> Jacobian {
        let sum = self.add_jacobian(other);
        let bits = a.0.bits().max(b.0.bits());
        let mut acc = Jacobian::infinity();
        for i in (0..bits).rev() {
            acc = acc.double();
            match (a.0.bit(i), b.0.bit(i)) {
                (true, true) => acc = acc.add_jacobian(&sum),
                (true, false) => acc = acc.add_jacobian(self),
                (false, true) => acc = acc.add_jacobian(other),
                (false, false) => {}
            }
        }
        acc
    }

    /// Project back to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> Affine {
        if self.is_infinity() {
            return Affine::Infinity;
        }
        let zinv = self.z.invert().expect("nonzero z");
        let zinv2 = zinv.square();
        let zinv3 = zinv2.mul(&zinv);
        Affine::Point {
            x: self.x.mul(&zinv2),
            y: self.y.mul(&zinv3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn scalar(v: u64) -> Scalar {
        Scalar::from_u64(v)
    }

    fn x_hex(p: &Affine) -> String {
        hex::encode(&p.coords().unwrap().0.to_be_bytes())
    }

    fn y_hex(p: &Affine) -> String {
        hex::encode(&p.coords().unwrap().1.to_be_bytes())
    }

    #[test]
    fn generator_on_curve() {
        assert!(Affine::generator().is_on_curve());
    }

    #[test]
    fn two_g_known_value() {
        let p2 = Affine::generator().mul(&scalar(2));
        assert_eq!(
            x_hex(&p2),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5"
        );
        assert_eq!(
            y_hex(&p2),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a"
        );
    }

    #[test]
    fn three_g_known_value() {
        let p3 = Affine::generator().mul(&scalar(3));
        assert_eq!(
            x_hex(&p3),
            "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9"
        );
        assert_eq!(
            y_hex(&p3),
            "388f7b0f632de8140fe337e62a37f3566500a99934c2231b6cb9fd7584b8e672"
        );
    }

    #[test]
    fn add_matches_mul() {
        let g = Affine::generator();
        let sum = g.add(&g.add(&g)); // G + 2G via nested adds
        assert_eq!(sum, g.mul(&scalar(3)));
    }

    #[test]
    fn doubling_matches_addition() {
        let g = Affine::generator().to_jacobian();
        let d = g.double().to_affine();
        let a = g.add_jacobian(&g).to_affine(); // triggers the u1==u2 branch
        assert_eq!(d, a);
        assert_eq!(d, Affine::generator().mul(&scalar(2)));
    }

    #[test]
    fn point_plus_negation_is_infinity() {
        let p = Affine::generator().mul(&scalar(7));
        assert!(p.add(&p.neg()).is_infinity());
    }

    #[test]
    fn infinity_is_identity() {
        let p = Affine::generator().mul(&scalar(5));
        assert_eq!(p.add(&Affine::Infinity), p);
        assert_eq!(Affine::Infinity.add(&p), p);
        assert!(Affine::Infinity.is_on_curve());
    }

    #[test]
    fn n_times_g_is_infinity() {
        use super::super::scalar::N;
        use crate::u256::U256;
        // (n-1)·G + G = n·G = O
        let n_minus_1 = Scalar(N.overflowing_sub(&U256::ONE).0);
        let p = Affine::generator().mul(&n_minus_1);
        assert!(p.add(&Affine::generator()).is_infinity());
        // and (n-1)·G == -G
        assert_eq!(p, Affine::generator().neg());
    }

    #[test]
    fn shamir_matches_separate_muls() {
        let g = Affine::generator().to_jacobian();
        let q = g.mul(&scalar(77));
        for (a, b) in [(1u64, 1u64), (2, 3), (0, 9), (9, 0), (12345, 67890)] {
            let (a, b) = (scalar(a), scalar(b));
            let expected = g.mul(&a).add_jacobian(&q.mul(&b)).to_affine();
            let got = g.shamir_mul(&a, &q, &b).to_affine();
            assert_eq!(got, expected);
        }
        // Degenerate: both zero.
        assert!(g.shamir_mul(&Scalar::ZERO, &q, &Scalar::ZERO).is_infinity());
    }

    #[test]
    fn mul_distributes_over_add() {
        let g = Affine::generator();
        let a = g.mul(&scalar(11));
        let b = g.mul(&scalar(31));
        assert_eq!(a.add(&b), g.mul(&scalar(42)));
    }

    #[test]
    fn mul_by_zero_and_one() {
        let g = Affine::generator();
        assert!(g.mul(&Scalar::ZERO).is_infinity());
        assert_eq!(g.mul(&Scalar::ONE), g);
    }

    #[test]
    fn lift_x_round_trip() {
        let p = Affine::generator().mul(&scalar(9));
        let (x, y) = p.coords().unwrap();
        let lifted = Affine::lift_x(x, y.is_odd()).unwrap();
        assert_eq!(lifted, p);
        let flipped = Affine::lift_x(x, !y.is_odd()).unwrap();
        assert_eq!(flipped, p.neg());
    }

    #[test]
    fn lift_x_rejects_off_curve() {
        // x = 5: 5³+7 = 132 — check via the API rather than asserting QR-ness
        // by hand; if it lifts it must be on the curve.
        for v in 1u64..20 {
            if let Some(p) = Affine::lift_x(Fe::from_u64(v), false) {
                assert!(p.is_on_curve());
            }
        }
    }
}
