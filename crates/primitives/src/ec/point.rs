//! secp256k1 group arithmetic: `y² = x³ + 7` over `F_p`.
//!
//! Points are manipulated in Jacobian coordinates (`X/Z²`, `Y/Z³`) so that
//! scalar multiplication needs a single field inversion at the end.
//!
//! Two tiers of scalar multiplication coexist:
//!
//! - The **reference ladder** — [`Jacobian::mul`], [`Jacobian::shamir_mul`]
//!   over plain double-and-add with the generic [`Jacobian::double`] /
//!   [`Jacobian::add_jacobian`] formulas. It is kept byte-for-byte stable as
//!   the differential-testing oracle.
//! - The **fast path** — [`Affine::mul_gen`] (fixed-base comb over a
//!   precomputed generator table) and [`lincomb_gen`] (interleaved-wNAF
//!   Strauss pass over the generator table and a per-key [`PointTable`]),
//!   built on the cheaper [`Jacobian::dbl`] / [`Jacobian::add_mixed`]
//!   formulas and [`Jacobian::batch_to_affine`] normalization.
//!
//! The fast path is still "honest work" in the paper's sense — Script
//! Validation cost drives the Fig. 16b/17b breakdowns — it just removes the
//! algorithmic slack a production validator would never carry.

use std::sync::OnceLock;

use super::field::{Fe, P};
use super::glv;
use super::scalar::{Scalar, N};
use crate::u256::U256;

/// Affine curve point, or the point at infinity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Affine {
    /// The identity element.
    Infinity,
    /// A finite point `(x, y)`.
    Point { x: Fe, y: Fe },
}

/// Jacobian-coordinate point; `z = 0` encodes infinity.
#[derive(Clone, Copy, Debug)]
pub struct Jacobian {
    x: Fe,
    y: Fe,
    z: Fe,
}

/// Generator x-coordinate.
const GX: U256 = U256::from_be_limbs([
    0x79BE667EF9DCBBAC,
    0x55A06295CE870B07,
    0x029BFCDB2DCE28D9,
    0x59F2815B16F81798,
]);

/// Generator y-coordinate.
const GY: U256 = U256::from_be_limbs([
    0x483ADA7726A3C465,
    0x5DA4FBFC0E1108A8,
    0xFD17B448A6855419,
    0x9C47D08FFB10D4B8,
]);

impl Affine {
    /// The standard generator `G`.
    pub const G: Affine = Affine::Point {
        x: Fe(GX),
        y: Fe(GY),
    };

    /// The standard generator `G` (alias for [`Affine::G`]).
    pub fn generator() -> Affine {
        Affine::G
    }

    pub fn is_infinity(&self) -> bool {
        matches!(self, Affine::Infinity)
    }

    /// The affine coordinates, or `None` for infinity.
    pub fn coords(&self) -> Option<(Fe, Fe)> {
        match self {
            Affine::Infinity => None,
            Affine::Point { x, y } => Some((*x, *y)),
        }
    }

    /// Check the curve equation `y² = x³ + 7`.
    pub fn is_on_curve(&self) -> bool {
        match self {
            Affine::Infinity => true,
            Affine::Point { x, y } => {
                let lhs = y.square();
                let rhs = x.square().mul(x).add(&Fe::from_u64(7));
                lhs == rhs
            }
        }
    }

    /// Negate (reflect across the x-axis).
    pub fn neg(&self) -> Affine {
        match self {
            Affine::Infinity => Affine::Infinity,
            Affine::Point { x, y } => Affine::Point { x: *x, y: y.neg() },
        }
    }

    /// The curve endomorphism `φ(x, y) = (β·x, y)`, equal to scalar
    /// multiplication by `λ` (see [`glv`](super::glv)). One field
    /// multiplication instead of a point multiplication.
    pub(crate) fn endo(&self, beta: &Fe) -> Affine {
        match self {
            Affine::Infinity => Affine::Infinity,
            Affine::Point { x, y } => Affine::Point {
                x: x.mul(beta),
                y: *y,
            },
        }
    }

    /// Lift to Jacobian coordinates.
    pub fn to_jacobian(&self) -> Jacobian {
        match self {
            Affine::Infinity => Jacobian::infinity(),
            Affine::Point { x, y } => Jacobian {
                x: *x,
                y: *y,
                z: Fe::ONE,
            },
        }
    }

    /// Reconstruct the point with x-coordinate `x` and y-parity `odd`, if it
    /// lies on the curve (compressed-point decoding).
    pub fn lift_x(x: Fe, odd: bool) -> Option<Affine> {
        let y2 = x.square().mul(&x).add(&Fe::from_u64(7));
        let mut y = y2.sqrt()?;
        if y.is_odd() != odd {
            y = y.neg();
        }
        Some(Affine::Point { x, y })
    }

    /// `k * self` via Jacobian double-and-add.
    pub fn mul(&self, k: &Scalar) -> Affine {
        self.to_jacobian().mul(k).to_affine()
    }

    /// `k·G` via the fixed-base comb table: the scalar's 64 nibbles each
    /// select one precomputed `d·16^w·G`, so the whole multiplication is at
    /// most 63 mixed additions and no doublings. Used by signing and key
    /// derivation; verification goes through [`lincomb_gen`].
    pub fn mul_gen(k: &Scalar) -> Jacobian {
        let t = gen_tables();
        let mut acc = Jacobian::infinity();
        for (w, row) in t.comb.iter().enumerate() {
            let limb = k.0.limbs[w / 16];
            let d = ((limb >> ((w % 16) * 4)) & 0xf) as usize;
            if d != 0 {
                acc = acc.add_mixed(&row[d - 1]);
            }
        }
        acc
    }

    /// `a + b` in affine terms (used by verification: `u1·G + u2·Q`).
    pub fn add(&self, other: &Affine) -> Affine {
        self.to_jacobian()
            .add_jacobian(&other.to_jacobian())
            .to_affine()
    }
}

impl Jacobian {
    pub fn infinity() -> Jacobian {
        Jacobian {
            x: Fe::ONE,
            y: Fe::ONE,
            z: Fe::ZERO,
        }
    }

    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (curve has `a = 0`).
    pub fn double(&self) -> Jacobian {
        if self.is_infinity() || self.y.is_zero() {
            return Jacobian::infinity();
        }
        let y2 = self.y.square();
        let s = self.x.mul(&y2).mul(&Fe::from_u64(4));
        let m = self.x.square().mul(&Fe::from_u64(3));
        let x3 = m.square().sub(&s).sub(&s);
        let y4_8 = y2.square().mul(&Fe::from_u64(8));
        let y3 = m.mul(&s.sub(&x3)).sub(&y4_8);
        let z3 = self.y.mul(&self.z).mul(&Fe::from_u64(2));
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian addition.
    pub fn add_jacobian(&self, other: &Jacobian) -> Jacobian {
        if self.is_infinity() {
            return *other;
        }
        if other.is_infinity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = self.x.mul(&z2z2);
        let u2 = other.x.mul(&z1z1);
        let s1 = self.y.mul(&z2z2).mul(&other.z);
        let s2 = other.y.mul(&z1z1).mul(&self.z);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Jacobian::infinity();
        }
        let h = u2.sub(&u1);
        let r = s2.sub(&s1);
        let h2 = h.square();
        let h3 = h2.mul(&h);
        let u1h2 = u1.mul(&h2);
        let x3 = r.square().sub(&h3).sub(&u1h2).sub(&u1h2);
        let y3 = r.mul(&u1h2.sub(&x3)).sub(&s1.mul(&h3));
        let z3 = h.mul(&self.z).mul(&other.z);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// `k * self`, MSB-first double-and-add.
    pub fn mul(&self, k: &Scalar) -> Jacobian {
        let mut acc = Jacobian::infinity();
        let bits = k.0.bits();
        for i in (0..bits).rev() {
            acc = acc.double();
            if k.0.bit(i) {
                acc = acc.add_jacobian(self);
            }
        }
        acc
    }

    /// Shamir's trick: `a·self + b·other` in a single double-and-add pass
    /// (ECDSA verification computes `u1·G + u2·Q`; the shared pass does
    /// one doubling ladder instead of two).
    pub fn shamir_mul(&self, a: &Scalar, other: &Jacobian, b: &Scalar) -> Jacobian {
        let sum = self.add_jacobian(other);
        let bits = a.0.bits().max(b.0.bits());
        let mut acc = Jacobian::infinity();
        for i in (0..bits).rev() {
            acc = acc.double();
            match (a.0.bit(i), b.0.bit(i)) {
                (true, true) => acc = acc.add_jacobian(&sum),
                (true, false) => acc = acc.add_jacobian(self),
                (false, true) => acc = acc.add_jacobian(other),
                (false, false) => {}
            }
        }
        acc
    }

    /// Project back to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> Affine {
        if self.is_infinity() {
            return Affine::Infinity;
        }
        let zinv = self.z.invert().expect("nonzero z");
        let zinv2 = zinv.square();
        let zinv3 = zinv2.mul(&zinv);
        Affine::Point {
            x: self.x.mul(&zinv2),
            y: self.y.mul(&zinv3),
        }
    }

    /// Fast-path doubling: `dbl-2009-l` (2M + 5S since `a = 0`), versus the
    /// 4M + 4S-plus-small-multiples shape of the reference
    /// [`Jacobian::double`].
    pub fn dbl(&self) -> Jacobian {
        if self.is_infinity() || self.y.is_zero() {
            return Jacobian::infinity();
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        // D = 2·((X1+B)² − A − C)
        let d = self.x.add(&b).square().sub(&a).sub(&c).dbl();
        let e = a.dbl().add(&a); // 3·A
        let f = e.square();
        let x3 = f.sub(&d).sub(&d);
        let c8 = c.dbl().dbl().dbl();
        let y3 = e.mul(&d.sub(&x3)).sub(&c8);
        let z3 = self.y.mul(&self.z).dbl();
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Fast-path mixed addition of an affine point: `madd-2007-bl`
    /// (7M + 4S), versus 12M + 4S for the general [`Jacobian::add_jacobian`].
    /// This is what makes precomputed *affine* tables pay off.
    pub fn add_mixed(&self, other: &Affine) -> Jacobian {
        let (x2, y2) = match other {
            Affine::Infinity => return *self,
            Affine::Point { x, y } => (x, y),
        };
        if self.is_infinity() {
            return other.to_jacobian();
        }
        let z1z1 = self.z.square();
        let u2 = x2.mul(&z1z1);
        let s2 = y2.mul(&self.z).mul(&z1z1);
        if u2 == self.x {
            if s2 == self.y {
                return self.dbl();
            }
            return Jacobian::infinity();
        }
        let h = u2.sub(&self.x);
        let hh = h.square();
        let i = hh.dbl().dbl(); // 4·HH
        let j = h.mul(&i);
        let r = s2.sub(&self.y).dbl();
        let v = self.x.mul(&i);
        let x3 = r.square().sub(&j).sub(&v).sub(&v);
        let y3 = r.mul(&v.sub(&x3)).sub(&self.y.mul(&j).dbl());
        let z3 = self.z.add(&h).square().sub(&z1z1).sub(&hh);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Normalize a batch of Jacobian points with **one** shared field
    /// inversion (Montgomery's simultaneous-inversion trick) instead of one
    /// per point. Infinities map to [`Affine::Infinity`] and are skipped in
    /// the product chain.
    pub fn batch_to_affine(points: &[Jacobian]) -> Vec<Affine> {
        // Forward pass: prefix[i] = product of z over non-infinite points
        // before index i.
        let mut prefix = Vec::with_capacity(points.len());
        let mut acc = Fe::ONE;
        for p in points {
            prefix.push(acc);
            if !p.is_infinity() {
                acc = acc.mul(&p.z);
            }
        }
        // acc is a product of nonzero field elements (or ONE), so invertible.
        let mut inv = acc.invert().expect("product of nonzero z is nonzero");
        // Backward pass: peel one z off the running inverse per point.
        let mut out = vec![Affine::Infinity; points.len()];
        for (i, p) in points.iter().enumerate().rev() {
            if p.is_infinity() {
                continue;
            }
            let zinv = inv.mul(&prefix[i]);
            inv = inv.mul(&p.z);
            let zinv2 = zinv.square();
            out[i] = Affine::Point {
                x: p.x.mul(&zinv2),
                y: p.y.mul(&zinv2.mul(&zinv)),
            };
        }
        out
    }

    /// Does this point's affine x-coordinate, reduced mod `n`, equal `r`?
    ///
    /// ECDSA verification ends with exactly this question, and answering it
    /// in projective form (`X == r̂·Z²` for each candidate lift `r̂` of `r`)
    /// removes the final field inversion of [`Jacobian::to_affine`].
    pub fn x_equals_scalar_mod_n(&self, r: &Scalar) -> bool {
        if self.is_infinity() {
            return false;
        }
        let z2 = self.z.square();
        if self.x == Fe(r.0).mul(&z2) {
            return true;
        }
        // x mod n == r also holds if x = r + n (possible since n < p); any
        // higher lift r + 2n exceeds p.
        let (rn, carry) = r.0.overflowing_add(&N);
        !carry && rn < P && self.x == Fe(rn).mul(&z2)
    }
}

/// Comb-table geometry for [`Affine::mul_gen`]: the 256-bit scalar is read
/// as 64 nibbles, and window `w` stores `d·16^w·G` for `d = 1..=15`, so a
/// full fixed-base multiplication is at most 63 mixed additions and **zero**
/// doublings.
const COMB_WINDOWS: usize = 64;
const COMB_TEETH: usize = 15;

/// wNAF window width for the generator half of [`lincomb_gen`]; the table
/// holds the 64 odd multiples `1·G, 3·G, …, 127·G`.
const GEN_WNAF_W: u32 = 8;
const GEN_WNAF_ENTRIES: usize = 1 << (GEN_WNAF_W - 2);

/// Precomputed generator tables, built once per process.
struct GenTables {
    /// `comb[w][d-1] = d·16^w·G`.
    comb: Vec<[Affine; COMB_TEETH]>,
    /// Odd multiples `(2i+1)·G` for the wNAF pass.
    wnaf: [Affine; GEN_WNAF_ENTRIES],
    /// `φ` applied to `wnaf`: odd multiples of `λ·G`, used by the GLV halves.
    wnaf_lambda: [Affine; GEN_WNAF_ENTRIES],
}

static GEN_TABLES: OnceLock<GenTables> = OnceLock::new();

/// Build both generator tables with the reference arithmetic (the tables are
/// an input to the fast path, so they must not depend on it) and normalize
/// everything with a single shared inversion.
fn gen_tables() -> &'static GenTables {
    GEN_TABLES.get_or_init(|| {
        let g = Affine::G.to_jacobian();
        let mut jac = Vec::with_capacity(COMB_WINDOWS * COMB_TEETH + GEN_WNAF_ENTRIES);
        let mut base = g;
        for _ in 0..COMB_WINDOWS {
            let mut acc = base;
            for _ in 0..COMB_TEETH {
                jac.push(acc);
                acc = acc.add_jacobian(&base);
            }
            base = acc; // acc has walked to 16·base: the next window's base
        }
        let two_g = g.double();
        let mut odd = g;
        for _ in 0..GEN_WNAF_ENTRIES {
            jac.push(odd);
            odd = odd.add_jacobian(&two_g);
        }
        let affine = Jacobian::batch_to_affine(&jac);
        let mut comb = Vec::with_capacity(COMB_WINDOWS);
        for w in 0..COMB_WINDOWS {
            let mut row = [Affine::Infinity; COMB_TEETH];
            row.copy_from_slice(&affine[w * COMB_TEETH..(w + 1) * COMB_TEETH]);
            comb.push(row);
        }
        let mut wnaf = [Affine::Infinity; GEN_WNAF_ENTRIES];
        wnaf.copy_from_slice(&affine[COMB_WINDOWS * COMB_TEETH..]);
        let beta = &glv::params().beta;
        let wnaf_lambda = wnaf.map(|e| e.endo(beta));
        GenTables {
            comb,
            wnaf,
            wnaf_lambda,
        }
    })
}

/// wNAF window width for the variable point in [`lincomb_gen`]; a
/// [`PointTable`] holds the 8 odd multiples `1·Q, 3·Q, …, 15·Q`.
pub const POINT_TABLE_W: u32 = 5;
const POINT_TABLE_ENTRIES: usize = 1 << (POINT_TABLE_W - 2);

/// Precomputed odd multiples of a variable point `Q`, normalized to affine
/// with one shared inversion. Building one costs a doubling, seven additions
/// and a batch normalization; it is the per-key state cached by the
/// verification layer so repeated signers amortize it across a block.
#[derive(Clone, Debug)]
pub struct PointTable {
    /// `entries[i] = (2i+1)·Q`; all infinity iff `Q` is infinity.
    entries: [Affine; POINT_TABLE_ENTRIES],
}

impl PointTable {
    pub fn new(q: &Affine) -> PointTable {
        if q.is_infinity() {
            return PointTable {
                entries: [Affine::Infinity; POINT_TABLE_ENTRIES],
            };
        }
        let qj = q.to_jacobian();
        let two_q = qj.dbl();
        let mut jac = Vec::with_capacity(POINT_TABLE_ENTRIES);
        let mut acc = qj;
        for _ in 0..POINT_TABLE_ENTRIES {
            jac.push(acc);
            acc = acc.add_jacobian(&two_q);
        }
        let affine = Jacobian::batch_to_affine(&jac);
        let mut entries = [Affine::Infinity; POINT_TABLE_ENTRIES];
        entries.copy_from_slice(&affine);
        PointTable { entries }
    }

    /// Tables for many points with **one** shared field inversion across
    /// all of them, instead of one per [`PointTable::new`] call. The batch
    /// verifier builds a table per recovered nonce point `Rᵢ`, so per-table
    /// inversions would dominate its setup cost.
    pub fn batch_new(points: &[Affine]) -> Vec<PointTable> {
        let mut jac = Vec::with_capacity(points.len() * POINT_TABLE_ENTRIES);
        for q in points {
            if q.is_infinity() {
                jac.extend([Jacobian::infinity(); POINT_TABLE_ENTRIES]);
                continue;
            }
            let qj = q.to_jacobian();
            let two_q = qj.dbl();
            let mut acc = qj;
            for _ in 0..POINT_TABLE_ENTRIES {
                jac.push(acc);
                acc = acc.add_jacobian(&two_q);
            }
        }
        let affine = Jacobian::batch_to_affine(&jac);
        affine
            .chunks_exact(POINT_TABLE_ENTRIES)
            .map(|chunk| {
                let mut entries = [Affine::Infinity; POINT_TABLE_ENTRIES];
                entries.copy_from_slice(chunk);
                PointTable { entries }
            })
            .collect()
    }

    /// Look up a wNAF digit: `d` must be odd with `|d| < 2^(w-1)`; negative
    /// digits return the negated table entry.
    fn get(&self, d: i32) -> Affine {
        debug_assert!(d != 0 && d % 2 != 0 && d.unsigned_abs() < (1 << (POINT_TABLE_W - 1)));
        let e = self.entries[(d.unsigned_abs() as usize - 1) / 2];
        if d < 0 {
            e.neg()
        } else {
            e
        }
    }

    /// The table for `λ·Q`, by applying the endomorphism entrywise: eight
    /// field multiplications, against rebuilding a table from scratch
    /// (a doubling, seven full additions and a batch inversion).
    fn endo(&self, beta: &Fe) -> PointTable {
        PointTable {
            entries: self.entries.map(|e| e.endo(beta)),
        }
    }
}

/// `u1·G + u2·Q` by a GLV-split interleaved-wNAF Strauss pass. Both scalars
/// are decomposed as `k₁ + λ·k₂` with ~128-bit halves ([`glv`]), so the
/// shared doubling ladder is ~130 long instead of 256 — doublings dominate
/// this function, and GLV halves them for the price of two splits and an
/// entrywise endomorphism on each table. The generator halves (width 8) are
/// served from the static `G`/`λG` tables, the `Q` halves (width 5) from
/// `q_table` and its endomorphism image. Nonzero digits are sparse and every
/// addition is mixed (affine table entries). This replaces
/// [`Jacobian::shamir_mul`] on the ECDSA verification hot path.
pub fn lincomb_gen(u1: &Scalar, q_table: &PointTable, u2: &Scalar) -> Jacobian {
    let t = gen_tables();
    let glv = glv::params();
    let (g_lo, g_hi) = glv.split(u1);
    let (q_lo, q_hi) = glv.split(u2);
    let q_lambda = q_table.endo(&glv.beta);

    let gen_table = |entries: &'static [Affine; GEN_WNAF_ENTRIES]| PointTableRef::Gen(entries);
    let streams = [
        (g_lo, gen_table(&t.wnaf), GEN_WNAF_W),
        (g_hi, gen_table(&t.wnaf_lambda), GEN_WNAF_W),
        (q_lo, PointTableRef::Var(q_table), POINT_TABLE_W),
        (q_hi, PointTableRef::Var(&q_lambda), POINT_TABLE_W),
    ];
    let streams: Vec<(Vec<i32>, PointTableRef, bool)> = streams
        .into_iter()
        .map(|(half, table, w)| (half.mag.wnaf(w), table, half.neg))
        .collect();

    let len = streams.iter().map(|(d, _, _)| d.len()).max().unwrap_or(0);
    let mut acc = Jacobian::infinity();
    for i in (0..len).rev() {
        acc = acc.dbl();
        for (digits, table, neg) in &streams {
            if let Some(&d) = digits.get(i) {
                if d != 0 {
                    acc = acc.add_mixed(&table.get(if *neg { -d } else { d }));
                }
            }
        }
    }
    acc
}

/// One variable-point term of [`multi_scalar_mul`]: contributes
/// `±scalar·Q` where `Q` is the point `table` was built from (`negate`
/// selects the sign without touching the table).
pub struct MsmTerm<'a> {
    pub scalar: Scalar,
    pub table: &'a PointTable,
    pub negate: bool,
}

/// Scalars at or below this bit length skip the GLV split in
/// [`multi_scalar_mul`]: a split buys nothing once the scalar is already
/// ~half-width (the batch verifier's random coefficients are 128-bit by
/// construction), and skipping it halves that term's stream count. The
/// slack above 128 covers wNAF round-up.
const MSM_SPLIT_BITS: usize = 132;

/// `gen_scalar·G + Σᵢ ±scalarᵢ·Qᵢ` as one shared interleaved-wNAF Strauss
/// ladder — the n-term generalization of [`lincomb_gen`], and the engine
/// under batch ECDSA verification (`ec::batch`).
///
/// The generator term always takes the GLV split and is served from the
/// static width-8 `G`/`λG` tables. Each variable term brings its own
/// [`PointTable`]; full-width scalars are GLV-split (two width-5 streams,
/// the `λ` stream from an entrywise endomorphism of the table), while
/// short scalars ride a single unsplit stream. All streams share one
/// doubling ladder, so doublings — the dominant cost — are paid once for
/// the whole sum instead of once per term.
pub fn multi_scalar_mul(gen_scalar: &Scalar, terms: &[MsmTerm<'_>]) -> Jacobian {
    let t = gen_tables();
    let glv = glv::params();
    let (g_lo, g_hi) = glv.split(gen_scalar);

    // Endomorphism images for the split terms, materialized before the
    // stream list so the streams can borrow them.
    let split: Vec<bool> = terms
        .iter()
        .map(|term| term.scalar.0.bits() > MSM_SPLIT_BITS)
        .collect();
    let endo_tables: Vec<Option<PointTable>> = terms
        .iter()
        .zip(&split)
        .map(|(term, &s)| s.then(|| term.table.endo(&glv.beta)))
        .collect();

    let mut streams: Vec<(Vec<i32>, PointTableRef<'_>, bool)> =
        Vec::with_capacity(2 + 2 * terms.len());
    streams.push((
        g_lo.mag.wnaf(GEN_WNAF_W),
        PointTableRef::Gen(&t.wnaf),
        g_lo.neg,
    ));
    streams.push((
        g_hi.mag.wnaf(GEN_WNAF_W),
        PointTableRef::Gen(&t.wnaf_lambda),
        g_hi.neg,
    ));
    for ((term, &split_term), endo_table) in terms.iter().zip(&split).zip(&endo_tables) {
        if split_term {
            let (lo, hi) = glv.split(&term.scalar);
            streams.push((
                lo.mag.wnaf(POINT_TABLE_W),
                PointTableRef::Var(term.table),
                lo.neg ^ term.negate,
            ));
            streams.push((
                hi.mag.wnaf(POINT_TABLE_W),
                PointTableRef::Var(endo_table.as_ref().expect("built for split terms")),
                hi.neg ^ term.negate,
            ));
        } else {
            streams.push((
                term.scalar.wnaf(POINT_TABLE_W),
                PointTableRef::Var(term.table),
                term.negate,
            ));
        }
    }

    let len = streams.iter().map(|(d, _, _)| d.len()).max().unwrap_or(0);
    let mut acc = Jacobian::infinity();
    for i in (0..len).rev() {
        acc = acc.dbl();
        for (digits, table, neg) in &streams {
            if let Some(&d) = digits.get(i) {
                if d != 0 {
                    acc = acc.add_mixed(&table.get(if *neg { -d } else { d }));
                }
            }
        }
    }
    acc
}

/// Either the static generator wNAF tables (width 8) or a per-point
/// [`PointTable`] (width 5); unifies digit lookup across the four streams.
enum PointTableRef<'a> {
    Gen(&'static [Affine; GEN_WNAF_ENTRIES]),
    Var(&'a PointTable),
}

impl PointTableRef<'_> {
    fn get(&self, d: i32) -> Affine {
        match self {
            PointTableRef::Gen(entries) => {
                debug_assert!(d != 0 && d % 2 != 0 && d.unsigned_abs() < (1 << (GEN_WNAF_W - 1)));
                let e = entries[(d.unsigned_abs() as usize - 1) / 2];
                if d < 0 {
                    e.neg()
                } else {
                    e
                }
            }
            PointTableRef::Var(t) => t.get(d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn scalar(v: u64) -> Scalar {
        Scalar::from_u64(v)
    }

    fn x_hex(p: &Affine) -> String {
        hex::encode(&p.coords().unwrap().0.to_be_bytes())
    }

    fn y_hex(p: &Affine) -> String {
        hex::encode(&p.coords().unwrap().1.to_be_bytes())
    }

    #[test]
    fn generator_on_curve() {
        assert!(Affine::generator().is_on_curve());
    }

    #[test]
    fn two_g_known_value() {
        let p2 = Affine::generator().mul(&scalar(2));
        assert_eq!(
            x_hex(&p2),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5"
        );
        assert_eq!(
            y_hex(&p2),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a"
        );
    }

    #[test]
    fn three_g_known_value() {
        let p3 = Affine::generator().mul(&scalar(3));
        assert_eq!(
            x_hex(&p3),
            "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9"
        );
        assert_eq!(
            y_hex(&p3),
            "388f7b0f632de8140fe337e62a37f3566500a99934c2231b6cb9fd7584b8e672"
        );
    }

    #[test]
    fn add_matches_mul() {
        let g = Affine::generator();
        let sum = g.add(&g.add(&g)); // G + 2G via nested adds
        assert_eq!(sum, g.mul(&scalar(3)));
    }

    #[test]
    fn doubling_matches_addition() {
        let g = Affine::generator().to_jacobian();
        let d = g.double().to_affine();
        let a = g.add_jacobian(&g).to_affine(); // triggers the u1==u2 branch
        assert_eq!(d, a);
        assert_eq!(d, Affine::generator().mul(&scalar(2)));
    }

    #[test]
    fn point_plus_negation_is_infinity() {
        let p = Affine::generator().mul(&scalar(7));
        assert!(p.add(&p.neg()).is_infinity());
    }

    #[test]
    fn infinity_is_identity() {
        let p = Affine::generator().mul(&scalar(5));
        assert_eq!(p.add(&Affine::Infinity), p);
        assert_eq!(Affine::Infinity.add(&p), p);
        assert!(Affine::Infinity.is_on_curve());
    }

    #[test]
    fn n_times_g_is_infinity() {
        use super::super::scalar::N;
        use crate::u256::U256;
        // (n-1)·G + G = n·G = O
        let n_minus_1 = Scalar(N.overflowing_sub(&U256::ONE).0);
        let p = Affine::generator().mul(&n_minus_1);
        assert!(p.add(&Affine::generator()).is_infinity());
        // and (n-1)·G == -G
        assert_eq!(p, Affine::generator().neg());
    }

    #[test]
    fn shamir_matches_separate_muls() {
        let g = Affine::generator().to_jacobian();
        let q = g.mul(&scalar(77));
        for (a, b) in [(1u64, 1u64), (2, 3), (0, 9), (9, 0), (12345, 67890)] {
            let (a, b) = (scalar(a), scalar(b));
            let expected = g.mul(&a).add_jacobian(&q.mul(&b)).to_affine();
            let got = g.shamir_mul(&a, &q, &b).to_affine();
            assert_eq!(got, expected);
        }
        // Degenerate: both zero.
        assert!(g.shamir_mul(&Scalar::ZERO, &q, &Scalar::ZERO).is_infinity());
    }

    #[test]
    fn mul_distributes_over_add() {
        let g = Affine::generator();
        let a = g.mul(&scalar(11));
        let b = g.mul(&scalar(31));
        assert_eq!(a.add(&b), g.mul(&scalar(42)));
    }

    #[test]
    fn mul_by_zero_and_one() {
        let g = Affine::generator();
        assert!(g.mul(&Scalar::ZERO).is_infinity());
        assert_eq!(g.mul(&Scalar::ONE), g);
    }

    #[test]
    fn lift_x_round_trip() {
        let p = Affine::generator().mul(&scalar(9));
        let (x, y) = p.coords().unwrap();
        let lifted = Affine::lift_x(x, y.is_odd()).unwrap();
        assert_eq!(lifted, p);
        let flipped = Affine::lift_x(x, !y.is_odd()).unwrap();
        assert_eq!(flipped, p.neg());
    }

    #[test]
    fn lift_x_rejects_off_curve() {
        // x = 5: 5³+7 = 132 — check via the API rather than asserting QR-ness
        // by hand; if it lifts it must be on the curve.
        for v in 1u64..20 {
            if let Some(p) = Affine::lift_x(Fe::from_u64(v), false) {
                assert!(p.is_on_curve());
            }
        }
    }

    #[test]
    fn fast_dbl_matches_reference_double() {
        let mut p = Affine::G.to_jacobian();
        for _ in 0..16 {
            assert_eq!(p.dbl().to_affine(), p.double().to_affine());
            p = p.add_jacobian(&p.mul(&scalar(3)));
        }
        assert!(Jacobian::infinity().dbl().is_infinity());
        // y = 0 never occurs on secp256k1, but negation pairs exercise the
        // cancellation path via add_mixed below.
    }

    #[test]
    fn add_mixed_matches_reference_add() {
        let g = Affine::G.to_jacobian();
        for (a, b) in [(1u64, 2u64), (5, 9), (7, 7), (100, 1)] {
            let p = g.mul(&scalar(a));
            let q = g.mul(&scalar(b)).to_affine();
            let expected = p.add_jacobian(&q.to_jacobian()).to_affine();
            assert_eq!(p.add_mixed(&q).to_affine(), expected, "({a}, {b})");
        }
        // Identity cases.
        let q = g.mul(&scalar(11)).to_affine();
        assert_eq!(Jacobian::infinity().add_mixed(&q).to_affine(), q);
        assert_eq!(g.add_mixed(&Affine::Infinity).to_affine(), Affine::G);
        // Doubling and cancellation branches (u2 == x1).
        let p = g.mul(&scalar(21));
        let pa = p.to_affine();
        assert_eq!(p.add_mixed(&pa).to_affine(), p.double().to_affine());
        assert!(p.add_mixed(&pa.neg()).is_infinity());
    }

    #[test]
    fn batch_to_affine_matches_individual() {
        let g = Affine::G.to_jacobian();
        let mut pts = vec![Jacobian::infinity()];
        for v in [1u64, 2, 3, 999, 0xffff_ffff] {
            pts.push(g.mul(&scalar(v)));
        }
        pts.push(Jacobian::infinity());
        let batch = Jacobian::batch_to_affine(&pts);
        assert_eq!(batch.len(), pts.len());
        for (b, p) in batch.iter().zip(&pts) {
            assert_eq!(*b, p.to_affine());
        }
        assert!(Jacobian::batch_to_affine(&[]).is_empty());
        let all_inf = Jacobian::batch_to_affine(&[Jacobian::infinity(); 3]);
        assert!(all_inf.iter().all(|p| p.is_infinity()));
    }

    #[test]
    fn mul_gen_matches_reference_ladder() {
        use super::super::scalar::N;
        use crate::u256::U256;
        let n_minus_1 = Scalar(N.overflowing_sub(&U256::ONE).0);
        for k in [scalar(1), scalar(2), scalar(0xdead_beef), n_minus_1] {
            assert_eq!(Affine::mul_gen(&k).to_affine(), Affine::G.mul(&k));
        }
        assert!(Affine::mul_gen(&Scalar::ZERO).is_infinity());
    }

    #[test]
    fn lincomb_gen_matches_shamir() {
        let g = Affine::G.to_jacobian();
        let q = g.mul(&scalar(77));
        let qa = q.to_affine();
        let table = PointTable::new(&qa);
        for (a, b) in [(1u64, 1u64), (2, 3), (0, 9), (9, 0), (12345, 67890)] {
            let (a, b) = (scalar(a), scalar(b));
            let expected = g.shamir_mul(&a, &q, &b).to_affine();
            assert_eq!(lincomb_gen(&a, &table, &b).to_affine(), expected);
        }
        assert!(lincomb_gen(&Scalar::ZERO, &table, &Scalar::ZERO).is_infinity());
    }

    #[test]
    fn batch_new_matches_individual_tables() {
        let g = Affine::G.to_jacobian();
        let points: Vec<Affine> = vec![
            Affine::G,
            g.mul(&scalar(7)).to_affine(),
            Affine::Infinity,
            g.mul(&scalar(0xdead_beef)).to_affine(),
        ];
        let tables = PointTable::batch_new(&points);
        assert_eq!(tables.len(), points.len());
        for (t, p) in tables.iter().zip(&points) {
            assert_eq!(t.entries, PointTable::new(p).entries);
        }
        assert!(PointTable::batch_new(&[]).is_empty());
    }

    #[test]
    fn multi_scalar_mul_matches_reference_sum() {
        use super::super::scalar::N;
        use crate::u256::U256;
        let g = Affine::G.to_jacobian();
        let n_minus_1 = Scalar(N.overflowing_sub(&U256::ONE).0);
        let points: Vec<Affine> = [3u64, 77, 1_000_003]
            .iter()
            .map(|&v| g.mul(&scalar(v)).to_affine())
            .collect();
        let tables: Vec<PointTable> = points.iter().map(PointTable::new).collect();
        // Mix short (unsplit) and full-width (GLV-split) scalars, plus
        // negated terms, and check against the reference ladder sum.
        let cases: Vec<(Scalar, Vec<(Scalar, bool)>)> = vec![
            (scalar(5), vec![(scalar(7), false)]),
            (Scalar::ZERO, vec![(n_minus_1, false), (scalar(123), true)]),
            (
                n_minus_1,
                vec![
                    (scalar(1), true),
                    (Scalar::from_be_bytes_reduced(&[0xab; 32]), false),
                    (Scalar::ZERO, false),
                ],
            ),
        ];
        for (gen_k, term_ks) in cases {
            let terms: Vec<MsmTerm<'_>> = term_ks
                .iter()
                .zip(&tables)
                .map(|(&(scalar, negate), table)| MsmTerm {
                    scalar,
                    table,
                    negate,
                })
                .collect();
            let mut expected = g.mul(&gen_k);
            for ((k, negate), p) in term_ks.iter().zip(&points) {
                let mut part = p.to_jacobian().mul(k).to_affine();
                if *negate {
                    part = part.neg();
                }
                expected = expected.add_jacobian(&part.to_jacobian());
            }
            assert_eq!(
                multi_scalar_mul(&gen_k, &terms).to_affine(),
                expected.to_affine()
            );
        }
        // Degenerate: no terms, zero generator scalar.
        assert!(multi_scalar_mul(&Scalar::ZERO, &[]).is_infinity());
    }

    #[test]
    fn multi_scalar_mul_cancels_to_infinity() {
        // k·G − k·G via a negated term must land exactly on infinity — the
        // batch verifier's accept condition.
        let k = Scalar::from_be_bytes_reduced(&[0x5a; 32]);
        let p = Affine::mul_gen(&k).to_affine();
        let table = PointTable::new(&p);
        let terms = [MsmTerm {
            scalar: Scalar::ONE,
            table: &table,
            negate: true,
        }];
        assert!(multi_scalar_mul(&k, &terms).is_infinity());
    }

    #[test]
    fn point_table_of_infinity_is_infinity() {
        let table = PointTable::new(&Affine::Infinity);
        assert!(table.entries.iter().all(|p| p.is_infinity()));
    }

    #[test]
    fn x_equals_scalar_without_inversion() {
        let g = Affine::G.to_jacobian();
        for v in [1u64, 7, 12345] {
            let p = g.mul(&scalar(v));
            let (x, _) = p.to_affine().coords().unwrap();
            let r = Scalar::from_be_bytes_reduced(&x.to_be_bytes());
            assert!(p.x_equals_scalar_mod_n(&r), "v = {v}");
            assert!(!p.x_equals_scalar_mod_n(&r.add(&Scalar::ONE)));
        }
        assert!(!Jacobian::infinity().x_equals_scalar_mod_n(&Scalar::ONE));
    }
}
