//! Arithmetic in the secp256k1 base field
//! `F_p`, `p = 2^256 - 2^32 - 977`.
//!
//! Elements are kept fully reduced. Because `p = 2^256 - C` with
//! `C = 0x1000003D1` fitting in 33 bits, reduction of a 512-bit product is a
//! cheap fold: `H·2^256 + L ≡ H·C + L (mod p)`.

use crate::u256::U256;

/// `p = 2^256 - 2^32 - 977`.
pub const P: U256 = U256::from_be_limbs([
    0xFFFFFFFFFFFFFFFF,
    0xFFFFFFFFFFFFFFFF,
    0xFFFFFFFFFFFFFFFF,
    0xFFFFFFFEFFFFFC2F,
]);

/// `2^256 mod p`.
const C: u64 = 0x1000003D1;

/// An element of `F_p`, always in `[0, p)`.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct Fe(pub U256);

/// Branch-light test for `r ≥ p`, exploiting p's shape: every limb above
/// the lowest is all-ones, so `r ≥ p` iff limbs 1–3 are saturated and limb 0
/// reaches p's low limb. One AND-chain instead of a lexicographic compare
/// loop — this runs after every field addition.
#[inline(always)]
fn ge_p(r: &[u64; 4]) -> bool {
    (r[1] & r[2] & r[3]) == u64::MAX && r[0] >= P.limbs[0]
}

/// Subtract `p` in place (caller guarantees `r ≥ p`). Since limbs 1–3 of
/// both values are saturated, the difference is just the low limbs' gap.
#[inline(always)]
fn sub_p(r: &mut [u64; 4]) {
    debug_assert!(ge_p(r));
    r[0] -= P.limbs[0];
    r[1] = 0;
    r[2] = 0;
    r[3] = 0;
}

/// Reduce a 512-bit little-endian product modulo `p`, fully unrolled.
///
/// Fold 1 merges `l + h·C` in a single carry chain (h·C fits 256+34 bits);
/// fold 2 re-absorbs the ≤34-bit overflow as `top·C < 2^67`. This sits
/// under every field multiplication and squaring, so it is written without
/// loops, sub-calls, or wide compares.
#[inline]
fn reduce512(w: &[u64; 8]) -> Fe {
    let c = C as u128;
    // Fold 1: r = l + h·C.
    let t0 = w[0] as u128 + (w[4] as u128) * c;
    let t1 = w[1] as u128 + (w[5] as u128) * c + (t0 >> 64);
    let t2 = w[2] as u128 + (w[6] as u128) * c + (t1 >> 64);
    let t3 = w[3] as u128 + (w[7] as u128) * c + (t2 >> 64);
    let top = (t3 >> 64) as u64; // < 2^34

    // Fold 2: r += top·C (< 2^67), carried across all limbs.
    let tc = (top as u128) * c;
    let u0 = (t0 as u64 as u128) + (tc as u64 as u128);
    let u1 = (t1 as u64 as u128) + (tc >> 64) + (u0 >> 64);
    let u2 = (t2 as u64 as u128) + (u1 >> 64);
    let u3 = (t3 as u64 as u128) + (u2 >> 64);
    let mut r = [u0 as u64, u1 as u64, u2 as u64, u3 as u64];
    if (u3 >> 64) != 0 {
        // Wrapped past 2^256: 2^256 ≡ C (mod p); r is tiny so adding C
        // cannot wrap again.
        let v0 = r[0] as u128 + C as u128;
        r[0] = v0 as u64;
        let v1 = r[1] as u128 + (v0 >> 64);
        r[1] = v1 as u64;
        let v2 = r[2] as u128 + (v1 >> 64);
        r[2] = v2 as u64;
        r[3] += (v2 >> 64) as u64;
    }
    if ge_p(&r) {
        sub_p(&mut r);
    }
    Fe(U256 { limbs: r })
}

impl Fe {
    pub const ZERO: Fe = Fe(U256::ZERO);
    pub const ONE: Fe = Fe(U256::ONE);

    /// Construct from a small integer.
    pub fn from_u64(v: u64) -> Fe {
        Fe(U256::from_u64(v))
    }

    /// Parse 32 big-endian bytes; returns `None` if the value is ≥ p.
    pub fn from_be_bytes(b: &[u8; 32]) -> Option<Fe> {
        let v = U256::from_be_bytes(b);
        if v >= P {
            None
        } else {
            Some(Fe(v))
        }
    }

    /// Serialize as 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// True if the canonical representative is odd (used for compressed
    /// point parity).
    pub fn is_odd(&self) -> bool {
        self.0.limbs[0] & 1 == 1
    }

    pub fn add(&self, other: &Fe) -> Fe {
        let a = &self.0.limbs;
        let b = &other.0.limbs;
        let t0 = a[0] as u128 + b[0] as u128;
        let t1 = a[1] as u128 + b[1] as u128 + (t0 >> 64);
        let t2 = a[2] as u128 + b[2] as u128 + (t1 >> 64);
        let t3 = a[3] as u128 + b[3] as u128 + (t2 >> 64);
        let mut r = [t0 as u64, t1 as u64, t2 as u64, t3 as u64];
        if (t3 >> 64) != 0 {
            // a + b − 2^256 < 2p − 2^256 = p − C, so adding C (≡ 2^256)
            // cannot wrap and needs no second reduction.
            let v0 = r[0] as u128 + C as u128;
            r[0] = v0 as u64;
            let v1 = r[1] as u128 + (v0 >> 64);
            r[1] = v1 as u64;
            let v2 = r[2] as u128 + (v1 >> 64);
            r[2] = v2 as u64;
            r[3] += (v2 >> 64) as u64;
        } else if ge_p(&r) {
            sub_p(&mut r);
        }
        Fe(U256 { limbs: r })
    }

    pub fn sub(&self, other: &Fe) -> Fe {
        let a = &self.0.limbs;
        let b = &other.0.limbs;
        let (d0, bw0) = a[0].overflowing_sub(b[0]);
        let (d1, bw1) = {
            let (x, c1) = a[1].overflowing_sub(b[1]);
            let (x, c2) = x.overflowing_sub(bw0 as u64);
            (x, c1 | c2)
        };
        let (d2, bw2) = {
            let (x, c1) = a[2].overflowing_sub(b[2]);
            let (x, c2) = x.overflowing_sub(bw1 as u64);
            (x, c1 | c2)
        };
        let (d3, bw3) = {
            let (x, c1) = a[3].overflowing_sub(b[3]);
            let (x, c2) = x.overflowing_sub(bw2 as u64);
            (x, c1 | c2)
        };
        let mut r = [d0, d1, d2, d3];
        if bw3 {
            // r = a − b + 2^256; the canonical value is a − b + p = r − C.
            // a − b ≥ −(p − 1) gives r > C, so subtracting C cannot
            // underflow, and the result is below p.
            let (v0, c0) = r[0].overflowing_sub(C);
            r[0] = v0;
            let (v1, c1) = r[1].overflowing_sub(c0 as u64);
            r[1] = v1;
            let (v2, c2) = r[2].overflowing_sub(c1 as u64);
            r[2] = v2;
            r[3] -= c2 as u64;
        }
        Fe(U256 { limbs: r })
    }

    pub fn neg(&self) -> Fe {
        if self.is_zero() {
            *self
        } else {
            Fe(P.overflowing_sub(&self.0).0)
        }
    }

    pub fn mul(&self, other: &Fe) -> Fe {
        reduce512(&self.0.widening_mul(&other.0))
    }

    pub fn square(&self) -> Fe {
        reduce512(&self.0.widening_sqr())
    }

    /// `2·self`.
    pub fn dbl(&self) -> Fe {
        self.add(self)
    }

    /// `self^e` by square-and-multiply, MSB first.
    pub fn pow(&self, e: &U256) -> Fe {
        let mut acc = Fe::ONE;
        let bits = e.bits();
        for i in (0..bits).rev() {
            acc = acc.square();
            if e.bit(i) {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Multiplicative inverse by binary extended GCD; `None` for zero.
    /// ~20× cheaper than the Fermat exponentiation ([`Fe::invert_fermat`]),
    /// which is kept as the reference implementation and differentially
    /// tested against this.
    pub fn invert(&self) -> Option<Fe> {
        self.0.inv_mod(&P).map(Fe)
    }

    /// Reference inverse by Fermat's little theorem (`a^(p-2)`); `None`
    /// for zero. Exists to pin [`Fe::invert`] in differential tests.
    pub fn invert_fermat(&self) -> Option<Fe> {
        if self.is_zero() {
            return None;
        }
        let p_minus_2 = P.overflowing_sub(&U256::from_u64(2)).0;
        Some(self.pow(&p_minus_2))
    }

    /// Square root, if one exists. Since `p ≡ 3 (mod 4)`,
    /// `sqrt(a) = a^((p+1)/4)`; the candidate is verified before returning.
    ///
    /// The exponentiation uses a fixed addition chain (253 squarings plus
    /// 13 multiplications) instead of generic square-and-multiply: the
    /// binary expansion of `(p+1)/4` is three runs of 1s with lengths
    /// {223, 22, 2}, so chaining `2^n - 1` powers covers it with a handful
    /// of multiplies. Signature batch verification performs one sqrt per
    /// signature to recover the nonce point, which makes this the hottest
    /// field exponentiation in the codebase.
    pub fn sqrt(&self) -> Option<Fe> {
        // x_n denotes self^(2^n - 1).
        let sq_n = |x: &Fe, n: usize| -> Fe {
            let mut acc = *x;
            for _ in 0..n {
                acc = acc.square();
            }
            acc
        };
        let x2 = sq_n(self, 1).mul(self);
        let x3 = sq_n(&x2, 1).mul(self);
        let x6 = sq_n(&x3, 3).mul(&x3);
        let x9 = sq_n(&x6, 3).mul(&x3);
        let x11 = sq_n(&x9, 2).mul(&x2);
        let x22 = sq_n(&x11, 11).mul(&x11);
        let x44 = sq_n(&x22, 22).mul(&x22);
        let x88 = sq_n(&x44, 44).mul(&x44);
        let x176 = sq_n(&x88, 88).mul(&x88);
        let x220 = sq_n(&x176, 44).mul(&x44);
        let x223 = sq_n(&x220, 3).mul(&x3);
        // Stitch the runs together: ...1{223} 0 1{22} 000000 1{2} 00.
        let t = sq_n(&x223, 23).mul(&x22);
        let t = sq_n(&t, 6).mul(&x2);
        let cand = sq_n(&t, 2);
        if cand.square() == *self {
            Some(cand)
        } else {
            None
        }
    }
}

impl std::fmt::Debug for Fe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fe(0x{})", crate::hex::encode(&self.to_be_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(v: u64) -> Fe {
        Fe::from_u64(v)
    }

    #[test]
    fn add_wraps_at_p() {
        let p_minus_1 = Fe(P.overflowing_sub(&U256::ONE).0);
        assert_eq!(p_minus_1.add(&Fe::ONE), Fe::ZERO);
        assert_eq!(p_minus_1.add(&fe(2)), Fe::ONE);
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!(Fe::ZERO.sub(&Fe::ONE), Fe(P.overflowing_sub(&U256::ONE).0));
    }

    #[test]
    fn neg_is_additive_inverse() {
        let a = fe(123456789);
        assert_eq!(a.add(&a.neg()), Fe::ZERO);
        assert_eq!(Fe::ZERO.neg(), Fe::ZERO);
    }

    #[test]
    fn mul_small() {
        assert_eq!(fe(6).mul(&fe(7)), fe(42));
    }

    #[test]
    fn mul_reduces() {
        // (p-1)^2 mod p = 1  (since p-1 ≡ -1)
        let p_minus_1 = Fe(P.overflowing_sub(&U256::ONE).0);
        assert_eq!(p_minus_1.square(), Fe::ONE);
    }

    #[test]
    fn invert_round_trip() {
        for v in [1u64, 2, 3, 97, 0xffff_ffff, u64::MAX] {
            let a = fe(v);
            let inv = a.invert().expect("nonzero");
            assert_eq!(a.mul(&inv), Fe::ONE, "v = {v}");
        }
        assert!(Fe::ZERO.invert().is_none());
    }

    #[test]
    fn invert_matches_fermat_reference() {
        for v in [1u64, 2, 3, 97, 0xffff_ffff, u64::MAX] {
            let a = fe(v);
            assert_eq!(a.invert(), a.invert_fermat(), "v = {v}");
        }
        let p_minus_1 = Fe(P.overflowing_sub(&U256::ONE).0);
        assert_eq!(p_minus_1.invert(), p_minus_1.invert_fermat());
        assert!(Fe::ZERO.invert_fermat().is_none());
    }

    #[test]
    fn sqrt_of_squares() {
        for v in [2u64, 3, 5, 1234567, 0xdead_beef] {
            let a = fe(v);
            let sq = a.square();
            let r = sq.sqrt().expect("square has a root");
            assert!(r == a || r == a.neg(), "v = {v}");
        }
    }

    #[test]
    fn sqrt_chain_matches_pow_reference() {
        // The addition chain must compute exactly a^((p+1)/4); pin it
        // against the generic square-and-multiply over many values.
        let p_plus_1 = P.overflowing_add(&U256::ONE).0;
        let mut e = [0u64; 4];
        let mut carry = 0u64;
        for i in (0..4).rev() {
            let v = p_plus_1.limbs[i];
            e[i] = (v >> 2) | (carry << 62);
            carry = v & 0b11;
        }
        let exp = U256 { limbs: e };
        let mut a = fe(0xfeed_f00d);
        for _ in 0..64 {
            a = a.square().add(&Fe::ONE);
            let reference = a.pow(&exp);
            let is_root = reference.square() == a;
            match a.sqrt() {
                Some(root) => {
                    assert!(is_root);
                    assert!(root == reference || root == reference.neg());
                }
                None => assert!(!is_root),
            }
        }
    }

    #[test]
    fn sqrt_rejects_non_residue() {
        // 7 generates... instead test: for x where x is QR, -x is not
        // necessarily NQR; use a known non-residue: p ≡ 3 mod 4 means -1 is
        // a non-residue, so -(a^2) has no root when a != 0.
        let a = fe(42).square().neg();
        assert!(a.sqrt().is_none());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = fe(3);
        let mut acc = Fe::ONE;
        for _ in 0..17 {
            acc = acc.mul(&a);
        }
        assert_eq!(a.pow(&U256::from_u64(17)), acc);
    }

    #[test]
    fn from_be_bytes_rejects_ge_p() {
        assert!(Fe::from_be_bytes(&P.to_be_bytes()).is_none());
        assert!(Fe::from_be_bytes(&[0xff; 32]).is_none());
        assert_eq!(Fe::from_be_bytes(&U256::ONE.to_be_bytes()), Some(Fe::ONE));
    }
}
