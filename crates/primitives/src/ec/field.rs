//! Arithmetic in the secp256k1 base field
//! `F_p`, `p = 2^256 - 2^32 - 977`.
//!
//! Elements are kept fully reduced. Because `p = 2^256 - C` with
//! `C = 0x1000003D1` fitting in 33 bits, reduction of a 512-bit product is a
//! cheap fold: `H·2^256 + L ≡ H·C + L (mod p)`.

use crate::u256::U256;

/// `p = 2^256 - 2^32 - 977`.
pub const P: U256 = U256::from_be_limbs([
    0xFFFFFFFFFFFFFFFF,
    0xFFFFFFFFFFFFFFFF,
    0xFFFFFFFFFFFFFFFF,
    0xFFFFFFFEFFFFFC2F,
]);

/// `2^256 mod p`.
const C: u64 = 0x1000003D1;

/// An element of `F_p`, always in `[0, p)`.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct Fe(pub U256);

/// `a * m` where `m` is a single limb; returns (low 256 bits, carry limb).
fn mul_u256_u64(a: &U256, m: u64) -> (U256, u64) {
    let mut out = [0u64; 4];
    let mut carry = 0u128;
    for (i, o) in out.iter_mut().enumerate() {
        let t = (a.limbs[i] as u128) * (m as u128) + carry;
        *o = t as u64;
        carry = t >> 64;
    }
    (U256 { limbs: out }, carry as u64)
}

/// Reduce a 512-bit little-endian product modulo `p`.
fn reduce512(w: &[u64; 8]) -> Fe {
    let l = U256 {
        limbs: [w[0], w[1], w[2], w[3]],
    };
    let h = U256 {
        limbs: [w[4], w[5], w[6], w[7]],
    };

    // First fold: value ≡ l + h·C, with h·C < 2^(256+33).
    let (hc, hc_top) = mul_u256_u64(&h, C);
    let (sum, carry) = l.overflowing_add(&hc);
    let top = hc_top + carry as u64; // < 2^34, no overflow

    // Second fold: top·C < 2^67.
    let t = (top as u128) * (C as u128);
    let addend = U256 {
        limbs: [t as u64, (t >> 64) as u64, 0, 0],
    };
    let (mut r, carry2) = sum.overflowing_add(&addend);
    if carry2 {
        // Wrapped past 2^256: 2^256 ≡ C (mod p); r is tiny so this cannot
        // wrap again.
        r = r.overflowing_add(&U256::from_u64(C)).0;
    }
    while r >= P {
        r = r.overflowing_sub(&P).0;
    }
    Fe(r)
}

impl Fe {
    pub const ZERO: Fe = Fe(U256::ZERO);
    pub const ONE: Fe = Fe(U256::ONE);

    /// Construct from a small integer.
    pub fn from_u64(v: u64) -> Fe {
        Fe(U256::from_u64(v))
    }

    /// Parse 32 big-endian bytes; returns `None` if the value is ≥ p.
    pub fn from_be_bytes(b: &[u8; 32]) -> Option<Fe> {
        let v = U256::from_be_bytes(b);
        if v >= P {
            None
        } else {
            Some(Fe(v))
        }
    }

    /// Serialize as 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// True if the canonical representative is odd (used for compressed
    /// point parity).
    pub fn is_odd(&self) -> bool {
        self.0.limbs[0] & 1 == 1
    }

    pub fn add(&self, other: &Fe) -> Fe {
        let (mut s, carry) = self.0.overflowing_add(&other.0);
        if carry || s >= P {
            s = s.overflowing_sub(&P).0;
        }
        Fe(s)
    }

    pub fn sub(&self, other: &Fe) -> Fe {
        let (d, borrow) = self.0.overflowing_sub(&other.0);
        if borrow {
            Fe(d.overflowing_add(&P).0)
        } else {
            Fe(d)
        }
    }

    pub fn neg(&self) -> Fe {
        if self.is_zero() {
            *self
        } else {
            Fe(P.overflowing_sub(&self.0).0)
        }
    }

    pub fn mul(&self, other: &Fe) -> Fe {
        reduce512(&self.0.widening_mul(&other.0))
    }

    pub fn square(&self) -> Fe {
        self.mul(self)
    }

    /// `self^e` by square-and-multiply, MSB first.
    pub fn pow(&self, e: &U256) -> Fe {
        let mut acc = Fe::ONE;
        let bits = e.bits();
        for i in (0..bits).rev() {
            acc = acc.square();
            if e.bit(i) {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Multiplicative inverse by Fermat's little theorem (`a^(p-2)`).
    /// Returns `None` for zero.
    pub fn invert(&self) -> Option<Fe> {
        if self.is_zero() {
            return None;
        }
        let p_minus_2 = P.overflowing_sub(&U256::from_u64(2)).0;
        Some(self.pow(&p_minus_2))
    }

    /// Square root, if one exists. Since `p ≡ 3 (mod 4)`,
    /// `sqrt(a) = a^((p+1)/4)`; the candidate is verified before returning.
    pub fn sqrt(&self) -> Option<Fe> {
        // (p + 1) / 4: p + 1 = 2^256 - 2^32 - 976, shifted right twice.
        // Compute by adding one then shifting with carry handling; p+1 does
        // not overflow into 2^256 territory... it equals 2^256 - (2^32+976),
        // still < 2^256.
        let p_plus_1 = P.overflowing_add(&U256::ONE).0;
        let mut e = [0u64; 4];
        let mut carry = 0u64;
        for i in (0..4).rev() {
            let v = p_plus_1.limbs[i];
            e[i] = (v >> 2) | (carry << 62);
            carry = v & 0b11;
        }
        let cand = self.pow(&U256 { limbs: e });
        if cand.square() == *self {
            Some(cand)
        } else {
            None
        }
    }
}

impl std::fmt::Debug for Fe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fe(0x{})", crate::hex::encode(&self.to_be_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(v: u64) -> Fe {
        Fe::from_u64(v)
    }

    #[test]
    fn add_wraps_at_p() {
        let p_minus_1 = Fe(P.overflowing_sub(&U256::ONE).0);
        assert_eq!(p_minus_1.add(&Fe::ONE), Fe::ZERO);
        assert_eq!(p_minus_1.add(&fe(2)), Fe::ONE);
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!(Fe::ZERO.sub(&Fe::ONE), Fe(P.overflowing_sub(&U256::ONE).0));
    }

    #[test]
    fn neg_is_additive_inverse() {
        let a = fe(123456789);
        assert_eq!(a.add(&a.neg()), Fe::ZERO);
        assert_eq!(Fe::ZERO.neg(), Fe::ZERO);
    }

    #[test]
    fn mul_small() {
        assert_eq!(fe(6).mul(&fe(7)), fe(42));
    }

    #[test]
    fn mul_reduces() {
        // (p-1)^2 mod p = 1  (since p-1 ≡ -1)
        let p_minus_1 = Fe(P.overflowing_sub(&U256::ONE).0);
        assert_eq!(p_minus_1.square(), Fe::ONE);
    }

    #[test]
    fn invert_round_trip() {
        for v in [1u64, 2, 3, 97, 0xffff_ffff, u64::MAX] {
            let a = fe(v);
            let inv = a.invert().expect("nonzero");
            assert_eq!(a.mul(&inv), Fe::ONE, "v = {v}");
        }
        assert!(Fe::ZERO.invert().is_none());
    }

    #[test]
    fn sqrt_of_squares() {
        for v in [2u64, 3, 5, 1234567, 0xdead_beef] {
            let a = fe(v);
            let sq = a.square();
            let r = sq.sqrt().expect("square has a root");
            assert!(r == a || r == a.neg(), "v = {v}");
        }
    }

    #[test]
    fn sqrt_rejects_non_residue() {
        // 7 generates... instead test: for x where x is QR, -x is not
        // necessarily NQR; use a known non-residue: p ≡ 3 mod 4 means -1 is
        // a non-residue, so -(a^2) has no root when a != 0.
        let a = fe(42).square().neg();
        assert!(a.sqrt().is_none());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = fe(3);
        let mut acc = Fe::ONE;
        for _ in 0..17 {
            acc = acc.mul(&a);
        }
        assert_eq!(a.pow(&U256::from_u64(17)), acc);
    }

    #[test]
    fn from_be_bytes_rejects_ge_p() {
        assert!(Fe::from_be_bytes(&P.to_be_bytes()).is_none());
        assert!(Fe::from_be_bytes(&[0xff; 32]).is_none());
        assert_eq!(Fe::from_be_bytes(&U256::ONE.to_be_bytes()), Some(Fe::ONE));
    }
}
