//! Block-wide batch ECDSA verification.
//!
//! A valid ECDSA signature `(r, s)` on digest `z` under key `Q` satisfies
//! `R = u·G + v·Q` with `u = z·s⁻¹`, `v = r·s⁻¹`, where `R` is the nonce
//! point and `r = R.x mod n`. Instead of checking each input's equation
//! with its own scalar ladder, the batch verifier recovers every `Rᵢ` from
//! its `rᵢ` (x-candidate lift; see [`recover_r`]) and checks the single
//! random linear combination
//!
//! ```text
//!     Σ aᵢ·(uᵢ·G + vᵢ·Qᵢ − Rᵢ) = O
//! ```
//!
//! evaluated as **one** shared GLV-split interleaved-wNAF ladder
//! ([`multi_scalar_mul`]). Per-item work drops from a full ~130-deep
//! ladder to a few scalar multiplications, one short wNAF stream for
//! `Rᵢ`, and a shared-inversion table build; terms under a repeated key
//! `Q` collapse into a single GLV-split stream with coefficient
//! `Σ aᵢ·vᵢ`, which is where block workloads (heavy key reuse) win big.
//!
//! The coefficients `aᵢ` are [`COEFF_BITS`]-bit outputs of a
//! domain-separated SHA-256 PRF seeded by a transcript of the whole batch
//! (digest, `r`, `s`, and key bytes of every item), so an adversary cannot
//! choose signatures *after* seeing the coefficients: for any fixed set of
//! defective items, the combination vanishes with probability ≤ 2⁻⁶⁴ (a
//! forged item would need its defect `Dᵢ ≠ O` to satisfy `Σ aᵢ·Dᵢ = O` for
//! coefficients it cannot predict). This is the standard small-exponent
//! test: 64-bit coefficients halve the per-`Rᵢ` ladder work relative to
//! 128-bit ones, and grinding transcripts until a fixed defect pair
//! cancels costs an expected 2⁶⁴ hash-and-check attempts *per forged
//! batch* — far beyond any per-block budget. Raise `COEFF_BITS` (≤ 128)
//! if a deployment wants the stricter bound back. Sub-batches re-derive
//! coefficients under their own range tag, so bisection never reuses a
//! combination an adversary has already seen fail.
//!
//! **Recovering `R` needs its y-parity**, which plain ECDSA signatures do
//! not carry — worse, low-S normalization flips the effective nonce point
//! exactly when `s` was high, scrambling the parity. This codebase's
//! signer grinds nonces until the *normalized* signature's effective `R`
//! has even y ([`super::ecdsa::sign_even_r`]; two expected attempts, the
//! same trick as Bitcoin Core's low-R grinding), so the verifier lifts
//! every candidate at even parity. Signatures that break the convention
//! (odd-parity `R`, or an `rᵢ` that does not lift) are still *valid
//! signatures*: the equation simply fails for them, and the deterministic
//! bisection walks down to [`super::ecdsa::verify_prepared`], whose
//! verdict is parity-agnostic. Batching is a pure performance layer — the
//! accept/reject decision per item is always exactly the individual
//! verifier's.

use std::collections::HashMap;

use super::ecdsa::{self, Signature};
use super::field::{Fe, P};
use super::keys::PreparedPublicKey;
use super::point::{multi_scalar_mul, Affine, MsmTerm, PointTable};
use super::scalar::{Scalar, N};
use crate::hash::Sha256;

/// Domain tags for the coefficient PRF; versioned so a future change to
/// the transcript layout cannot silently alias the old one.
const TRANSCRIPT_TAG: &[u8] = b"ebv/batch-verify/v1/transcript";
const COEFF_TAG: &[u8] = b"ebv/batch-verify/v1/coeff";

/// Coefficient width of the small-exponent test (soundness 2^-COEFF_BITS;
/// see the module docs for the cost/soundness tradeoff). Must be a
/// multiple of 8, at most 128.
pub const COEFF_BITS: usize = 64;

/// One queued `(digest, signature, key)` triple.
struct Item {
    digest: [u8; 32],
    sig: Signature,
    /// Index into the deduplicated key list.
    key: usize,
}

/// Per-item precomputation for the batch equation; `None` marks items the
/// equation cannot express (zero `s`, or an `r` with no even-parity lift),
/// which resolve individually instead.
struct Prepared {
    /// `z·s⁻¹` — the item's contribution to the generator coefficient.
    u: Scalar,
    /// `r·s⁻¹` — the item's contribution to its key's coefficient.
    v: Scalar,
    /// Odd-multiples table of the recovered nonce point `R`.
    r_table: PointTable,
}

/// Work counters from one [`BatchVerifier::verify`] run, for telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Random-linear-combination evaluations (1 for an all-valid batch;
    /// bisection adds more).
    pub equation_checks: usize,
    /// Items resolved by the per-signature verifier (bisection leaves and
    /// non-batchable items).
    pub individual_checks: usize,
}

/// The result of verifying a batch: a per-item verdict vector (index ==
/// push order) plus aggregate stats.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    pub verdicts: Vec<bool>,
    pub all_valid: bool,
    pub stats: BatchStats,
}

/// Accumulates `(digest, signature, key)` triples and verifies them in one
/// randomized linear combination, bisecting deterministically on failure.
///
/// Verdicts are guaranteed identical to calling
/// [`ecdsa::verify_prepared`] per item — batching can never flip an
/// accept/reject decision, only the work done to reach it.
#[derive(Default)]
pub struct BatchVerifier<'a> {
    items: Vec<Item>,
    /// Distinct prepared keys, in first-seen order; items reference them
    /// by index so repeated signers share one ladder stream.
    keys: Vec<&'a PreparedPublicKey>,
    key_index: HashMap<[u8; 33], usize>,
}

impl<'a> BatchVerifier<'a> {
    pub fn new() -> BatchVerifier<'a> {
        BatchVerifier::default()
    }

    /// Queue one triple for verification.
    pub fn push(&mut self, digest: [u8; 32], sig: Signature, key: &'a PreparedPublicKey) {
        let encoded = key.public_key().to_compressed();
        let keys = &mut self.keys;
        let idx = *self.key_index.entry(encoded).or_insert_with(|| {
            keys.push(key);
            keys.len() - 1
        });
        self.items.push(Item {
            digest,
            sig,
            key: idx,
        });
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Verify every queued item. A single equation check clears an
    /// all-valid batch; otherwise the failing range is bisected (with
    /// fresh domain-separated coefficients per sub-range) down to
    /// per-item verification, so each verdict is individually grounded.
    pub fn verify(&self) -> BatchOutcome {
        let mut stats = BatchStats::default();
        let mut verdicts = vec![false; self.items.len()];
        if self.items.is_empty() {
            return BatchOutcome {
                verdicts,
                all_valid: true,
                stats,
            };
        }

        // s-inverses via Montgomery batch inversion: one eGCD for the
        // whole batch instead of one per item.
        let s_values: Vec<Scalar> = self.items.iter().map(|i| i.sig.s).collect();
        let s_inverses = batch_invert(&s_values);

        // Recover nonce points, then build all their tables with one
        // shared field inversion.
        let r_points: Vec<Option<Affine>> =
            self.items.iter().map(|i| recover_r(&i.sig.r)).collect();
        let r_tables = PointTable::batch_new(
            &r_points
                .iter()
                .map(|p| p.unwrap_or(Affine::Infinity))
                .collect::<Vec<_>>(),
        );

        let mut prepared: Vec<Option<Prepared>> = Vec::with_capacity(self.items.len());
        let mut batchable: Vec<usize> = Vec::with_capacity(self.items.len());
        for (i, item) in self.items.iter().enumerate() {
            let entry = match (&s_inverses[i], &r_points[i]) {
                (Some(s_inv), Some(_)) if !item.sig.r.is_zero() => Some(Prepared {
                    u: Scalar::from_be_bytes_reduced(&item.digest).mul(s_inv),
                    v: item.sig.r.mul(s_inv),
                    r_table: r_tables[i].clone(),
                }),
                _ => None,
            };
            if entry.is_some() {
                batchable.push(i);
            } else {
                // Zero components or an unliftable r: fall straight back
                // to the oracle (a zero component can only reach here via
                // a hand-built `Signature`; `from_compact` rejects them).
                stats.individual_checks += 1;
                verdicts[i] = self.verify_one(i);
            }
            prepared.push(entry);
        }

        let seed = self.transcript_seed();
        self.resolve(&prepared, &seed, &batchable, &mut verdicts, &mut stats);

        let all_valid = verdicts.iter().all(|&v| v);
        BatchOutcome {
            verdicts,
            all_valid,
            stats,
        }
    }

    /// Individual (oracle) verification of item `i`.
    fn verify_one(&self, i: usize) -> bool {
        let item = &self.items[i];
        if item.sig.r.is_zero() || item.sig.s.is_zero() {
            return false;
        }
        ecdsa::verify_prepared(&item.digest, &item.sig, self.keys[item.key].table())
    }

    /// SHA-256 over the full batch transcript; binds the coefficients to
    /// every digest, signature and key before any coefficient is drawn.
    fn transcript_seed(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(TRANSCRIPT_TAG);
        for item in &self.items {
            h.update(&item.digest);
            h.update(&item.sig.r.to_be_bytes());
            h.update(&item.sig.s.to_be_bytes());
            h.update(&self.keys[item.key].public_key().to_compressed());
        }
        h.finalize()
    }

    /// Deterministic bisection: clear `ids` with one equation check, or
    /// split in half and recurse; single items go to the oracle. The
    /// recursion order is fixed (left before right), so the work done —
    /// and therefore every observable verdict — is reproducible.
    fn resolve(
        &self,
        prepared: &[Option<Prepared>],
        seed: &[u8; 32],
        ids: &[usize],
        verdicts: &mut [bool],
        stats: &mut BatchStats,
    ) {
        match ids {
            [] => {}
            [i] => {
                stats.individual_checks += 1;
                verdicts[*i] = self.verify_one(*i);
            }
            _ => {
                stats.equation_checks += 1;
                if self.check_equation(prepared, seed, ids) {
                    for &i in ids {
                        verdicts[i] = true;
                    }
                    return;
                }
                let (left, right) = ids.split_at(ids.len() / 2);
                self.resolve(prepared, seed, left, verdicts, stats);
                self.resolve(prepared, seed, right, verdicts, stats);
            }
        }
    }

    /// Evaluate `Σ aᵢ·(uᵢ·G + vᵢ·Qᵢ − Rᵢ) = O` over `ids` as one ladder:
    /// a single generator term with coefficient `Σ aᵢ·uᵢ`, one GLV-split
    /// term per *distinct* key with coefficient `Σ aᵢ·vᵢ`, and one short
    /// (unsplit, the `aᵢ` are short) negated term per nonce point.
    fn check_equation(
        &self,
        prepared: &[Option<Prepared>],
        seed: &[u8; 32],
        ids: &[usize],
    ) -> bool {
        let mut gen_scalar = Scalar::ZERO;
        let mut key_scalars: Vec<Scalar> = vec![Scalar::ZERO; self.keys.len()];
        let mut key_seen: Vec<bool> = vec![false; self.keys.len()];
        let mut terms: Vec<MsmTerm<'_>> = Vec::with_capacity(ids.len() + self.keys.len());
        for (j, &i) in ids.iter().enumerate() {
            let p = prepared[i].as_ref().expect("ids hold batchable items");
            let a = coefficient(seed, ids[0] as u64, ids.len() as u64, j as u64);
            gen_scalar = gen_scalar.add(&a.mul(&p.u));
            let k = self.items[i].key;
            key_scalars[k] = key_scalars[k].add(&a.mul(&p.v));
            key_seen[k] = true;
            terms.push(MsmTerm {
                scalar: a,
                table: &p.r_table,
                negate: true,
            });
        }
        for (k, seen) in key_seen.iter().enumerate() {
            if *seen && !key_scalars[k].is_zero() {
                terms.push(MsmTerm {
                    scalar: key_scalars[k],
                    table: self.keys[k].table(),
                    negate: false,
                });
            }
        }
        multi_scalar_mul(&gen_scalar, &terms).is_infinity()
    }
}

/// Lift the nonce point from `r = R.x mod n`, at even y-parity (the
/// signer's convention; see the module docs). `R.x` itself is either `r`
/// or `r + n` — `n < p`, so exactly one extra candidate can exist below
/// `p`. Preferring the `r` candidate when both lift is safe: a wrong pick
/// only fails the equation and falls back to the oracle.
fn recover_r(r: &Scalar) -> Option<Affine> {
    if r.is_zero() {
        return None;
    }
    if let Some(point) = Affine::lift_x(Fe(r.0), false) {
        return Some(point);
    }
    let (rn, carry) = r.0.overflowing_add(&N);
    if !carry && rn < P {
        return Affine::lift_x(Fe(rn), false);
    }
    None
}

/// Draw coefficient `aᵢ` for position `j` of the sub-batch starting at
/// item `first` with `count` items: [`COEFF_BITS`] bits of
/// `SHA-256(tag ‖ seed ‖ first ‖ count ‖ j)`, forced nonzero. The
/// `(first, count)` range tag domain-separates bisection sub-batches from
/// each other and from the full batch.
fn coefficient(seed: &[u8; 32], first: u64, count: u64, j: u64) -> Scalar {
    let mut h = Sha256::new();
    h.update(COEFF_TAG);
    h.update(seed);
    h.update(&first.to_be_bytes());
    h.update(&count.to_be_bytes());
    h.update(&j.to_be_bytes());
    let digest = h.finalize();
    let mut bytes = [0u8; 32];
    bytes[32 - COEFF_BITS / 8..].copy_from_slice(&digest[..COEFF_BITS / 8]);
    let a = Scalar::from_be_bytes(&bytes).expect("a short value is below n");
    if a.is_zero() {
        Scalar::ONE
    } else {
        a
    }
}

/// Montgomery batch inversion over scalars: one eGCD plus `3(k-1)`
/// multiplications for `k` nonzero inputs. Zero inputs yield `None` and
/// are skipped in the product chain (mirrors
/// [`super::point::Jacobian::batch_to_affine`]).
fn batch_invert(values: &[Scalar]) -> Vec<Option<Scalar>> {
    let mut prefix = Vec::with_capacity(values.len());
    let mut acc = Scalar::ONE;
    for v in values {
        prefix.push(acc);
        if !v.is_zero() {
            acc = acc.mul(v);
        }
    }
    let mut inv = acc.invert().expect("product of nonzero scalars is nonzero");
    let mut out = vec![None; values.len()];
    for (i, v) in values.iter().enumerate().rev() {
        if v.is_zero() {
            continue;
        }
        out[i] = Some(inv.mul(&prefix[i]));
        inv = inv.mul(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ec::keys::PrivateKey;
    use crate::hash::sha256;

    fn signed_items(count: usize, key_seeds: &[u64]) -> Vec<([u8; 32], Signature, PrivateKey)> {
        (0..count)
            .map(|i| {
                let sk = PrivateKey::from_seed(key_seeds[i % key_seeds.len()]);
                let z = sha256(format!("batch item {i}").as_bytes());
                let sig = sk.sign(&z);
                (z, sig, sk)
            })
            .collect()
    }

    #[test]
    fn all_valid_batch_needs_one_equation() {
        let items = signed_items(12, &[1, 2, 3]);
        let prepared: Vec<_> = items
            .iter()
            .map(|(_, _, sk)| sk.public_key().prepare())
            .collect();
        let mut batch = BatchVerifier::new();
        for ((z, sig, _), key) in items.iter().zip(&prepared) {
            batch.push(*z, *sig, key);
        }
        let out = batch.verify();
        assert!(out.all_valid);
        assert!(out.verdicts.iter().all(|&v| v));
        assert_eq!(out.stats.equation_checks, 1);
        assert_eq!(out.stats.individual_checks, 0);
    }

    #[test]
    fn single_invalid_item_is_pinpointed() {
        let items = signed_items(9, &[5, 6]);
        let prepared: Vec<_> = items
            .iter()
            .map(|(_, _, sk)| sk.public_key().prepare())
            .collect();
        let mut batch = BatchVerifier::new();
        for (i, ((z, sig, _), key)) in items.iter().zip(&prepared).enumerate() {
            let mut sig = *sig;
            if i == 4 {
                // Tamper s rather than r: the item stays batchable (R
                // recovery depends only on r), so the defect must be found
                // by equation bisection, not the non-batchable early-out.
                sig.s = sig.s.add(&Scalar::ONE);
            }
            batch.push(*z, sig, key);
        }
        let out = batch.verify();
        assert!(!out.all_valid);
        for (i, &v) in out.verdicts.iter().enumerate() {
            assert_eq!(v, i != 4, "item {i}");
        }
        // Bisection must have reached at least one oracle leaf.
        assert!(out.stats.individual_checks >= 1);
        assert!(out.stats.equation_checks >= 2);
    }

    #[test]
    fn empty_batch_is_valid() {
        let out = BatchVerifier::new().verify();
        assert!(out.all_valid);
        assert!(out.verdicts.is_empty());
        assert_eq!(out.stats, BatchStats::default());
    }

    #[test]
    fn verify_is_deterministic() {
        let items = signed_items(7, &[9]);
        let prepared: Vec<_> = items
            .iter()
            .map(|(_, _, sk)| sk.public_key().prepare())
            .collect();
        let run = || {
            let mut batch = BatchVerifier::new();
            for (i, ((z, sig, _), key)) in items.iter().zip(&prepared).enumerate() {
                let mut sig = *sig;
                if i % 3 == 0 {
                    sig.s = sig.s.add(&Scalar::ONE).normalize_s();
                }
                batch.push(*z, sig, key);
            }
            let out = batch.verify();
            (out.verdicts, out.stats)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_component_items_resolve_individually_as_invalid() {
        let sk = PrivateKey::from_seed(31);
        let key = sk.public_key().prepare();
        let z = sha256(b"zero components");
        let good = sk.sign(&z);
        let mut batch = BatchVerifier::new();
        batch.push(z, good, &key);
        batch.push(
            z,
            Signature {
                r: Scalar::ZERO,
                s: good.s,
            },
            &key,
        );
        batch.push(
            z,
            Signature {
                r: good.r,
                s: Scalar::ZERO,
            },
            &key,
        );
        let out = batch.verify();
        assert_eq!(out.verdicts, vec![true, false, false]);
        assert!(out.stats.individual_checks >= 2);
    }
}
