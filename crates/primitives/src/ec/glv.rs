//! GLV endomorphism acceleration for secp256k1 (Gallant–Lambert–Vanstone).
//!
//! secp256k1 has `j`-invariant 0, so it carries the efficient endomorphism
//! `φ(x, y) = (β·x, y)` where `β` is a primitive cube root of unity mod `p`.
//! On the group, `φ` acts as multiplication by `λ`, a cube root of unity mod
//! `n`. Any scalar `k` can then be rewritten `k = k₁ + λ·k₂ (mod n)` with
//! `|k₁|, |k₂| ≈ √n`, turning one 256-bit multiplication into two ~128-bit
//! ones that share a doubling ladder — halving the doubling count of
//! [`lincomb_gen`](super::point::lincomb_gen).
//!
//! Every parameter here is **derived at first use**, not transcribed:
//!
//! * `β = a^((p−1)/3)` for the first base `a` that gives a non-trivial root;
//!   likewise a candidate `μ = a^((n−1)/3)` mod `n`.
//! * `λ` is whichever of `μ`, `μ²` satisfies `λ·G = φ(G)` under the
//!   *reference* ladder (the other pairs with `β²`).
//! * The short lattice basis comes from the extended Euclidean algorithm on
//!   `(n, λ)`, stopped at the first remainder below `√n` — the construction
//!   from the GLV paper (CRYPTO 2001), also used by libsecp256k1.
//!
//! Correctness of a split never rests on the derivation being *optimal*:
//! `k₁` and `k₂` are computed mod `n` from the definition
//! `k₁ = k − c₁a₁ − c₂a₂`, `k₂ = −(c₁b₁ + c₂b₂)`, so `k₁ + λk₂ ≡ k (mod n)`
//! holds for **any** rounding `c₁, c₂` because `(a₁, b₁)` and `(a₂, b₂)`
//! both lie in the lattice `{(a, b) : a + bλ ≡ 0 (mod n)}`. A bad basis
//! could only make the halves long (slow), never wrong — and the unit tests
//! pin the ~128-bit bound.

use std::sync::OnceLock;

use super::field::{Fe, P};
use super::point::Affine;
use super::scalar::{Scalar, HALF_N, N};
use crate::u256::U256;

/// One half of a GLV decomposition: a sign and a magnitude below ~`2^129`.
pub(crate) struct SplitScalar {
    pub neg: bool,
    pub mag: Scalar,
}

/// Derived endomorphism parameters; built once per process.
pub(crate) struct Glv {
    /// Primitive cube root of unity mod `p`, paired with `lambda`.
    pub beta: Fe,
    /// Primitive cube root of unity mod `n`: `φ(P) = λ·P`.
    pub lambda: Scalar,
    /// Short lattice vectors `v₁ = (a1, b1)`, `v₂ = (a2, b2)` with
    /// `aᵢ + bᵢ·λ ≡ 0 (mod n)`, stored as sign + magnitude-as-scalar.
    a1: (bool, Scalar),
    b1: (bool, Scalar),
    a2: (bool, Scalar),
    b2: (bool, Scalar),
    /// `gᵢ = round(2^384·|βᵢ|/n)` with `β₁ = b2·sign(d)`, `β₂ = −b1·sign(d)`
    /// and `d = a1·b2 − a2·b1 = ±n`, so `cᵢ = round(k·gᵢ/2^384)` approximates
    /// the exact rational solution `cᵢ = k·βᵢ/n`. The stored sign is `βᵢ`'s.
    g1: (bool, U256),
    g2: (bool, U256),
}

static GLV: OnceLock<Glv> = OnceLock::new();

pub(crate) fn params() -> &'static Glv {
    GLV.get_or_init(Glv::derive)
}

/// Signed 256-bit value as sign + magnitude (init-time bookkeeping only).
#[derive(Clone, Copy)]
struct Signed {
    neg: bool,
    mag: U256,
}

impl Signed {
    const ZERO: Signed = Signed {
        neg: false,
        mag: U256::ZERO,
    };

    fn neg(&self) -> Signed {
        Signed {
            neg: !self.neg && !self.mag.is_zero(),
            mag: self.mag,
        }
    }

    /// `self − other`, i.e. the sum of `self` and `−other`.
    fn sub(&self, other: &Signed) -> Signed {
        let o = other.neg();
        if self.neg == o.neg {
            let (s, carry) = self.mag.overflowing_add(&o.mag);
            assert!(!carry, "signed magnitude overflow");
            Signed {
                neg: self.neg && !s.is_zero(),
                mag: s,
            }
        } else if self.mag >= o.mag {
            let d = self.mag.overflowing_sub(&o.mag).0;
            Signed {
                neg: self.neg && !d.is_zero(),
                mag: d,
            }
        } else {
            Signed {
                neg: o.neg,
                mag: o.mag.overflowing_sub(&self.mag).0,
            }
        }
    }

    /// `q·self` for unsigned `q`; panics if the magnitude leaves 256 bits
    /// (cannot happen for Euclidean coefficients, which stay below `n`).
    fn mul_u(&self, q: &U256) -> Signed {
        let wide = self.mag.widening_mul(q);
        assert!(
            wide[4..].iter().all(|&l| l == 0),
            "signed magnitude overflow"
        );
        Signed {
            neg: self.neg && !(self.mag.is_zero() || q.is_zero()),
            mag: U256 {
                limbs: [wide[0], wide[1], wide[2], wide[3]],
            },
        }
    }
}

/// `dividend / n` and remainder for a 576-bit little-endian dividend; the
/// quotient is asserted to fit 256 bits by the caller. Init-time only.
fn div_wide(dividend: &[u64; 9], divisor: &U256) -> ([u64; 9], U256) {
    let mut q = [0u64; 9];
    let mut r = U256::ZERO;
    for i in (0..576).rev() {
        let overflow = r.bit(255);
        r = r.shl1();
        if dividend[i / 64] >> (i % 64) & 1 == 1 {
            r.limbs[0] |= 1;
        }
        if overflow {
            let comp = U256::ZERO.overflowing_sub(divisor).0;
            r = r.overflowing_add(&comp).0;
            q[i / 64] |= 1 << (i % 64);
        } else if r >= *divisor {
            r = r.overflowing_sub(divisor).0;
            q[i / 64] |= 1 << (i % 64);
        }
    }
    (q, r)
}

/// First non-trivial cube root of unity: `a^((m−1)/3)` over the given `pow`,
/// trying small bases until the result is not 1. Requires `m ≡ 1 (mod 3)`.
fn cube_root<T: PartialEq>(one: T, pow: impl Fn(u64, &U256) -> T, m: &U256) -> T {
    let m_minus_1 = m.overflowing_sub(&U256::ONE).0;
    let (exp, rem) = m_minus_1.div_rem(&U256::from_u64(3));
    assert!(rem.is_zero(), "modulus is not 1 mod 3");
    for base in 2..64 {
        let r = pow(base, &exp);
        if r != one {
            return r;
        }
    }
    unreachable!("no cube non-residue among small bases");
}

impl Glv {
    fn derive() -> Glv {
        // β and λ, paired through the reference ladder.
        let beta = cube_root(Fe(U256::ONE), |b, e| Fe::from_u64(b).pow(e), &P);
        let mu = cube_root(Scalar::ONE, |b, e| Scalar::from_u64(b).pow(e), &N);
        let g = Affine::generator();
        let (gx, gy) = g.coords().expect("generator is finite");
        let phi_g = Affine::Point {
            x: gx.mul(&beta),
            y: gy,
        };
        let lambda = if g.mul(&mu) == phi_g {
            mu
        } else {
            let mu2 = mu.mul(&mu);
            assert_eq!(g.mul(&mu2), phi_g, "no cube root acts as φ");
            mu2
        };

        // Extended Euclid on (n, λ): remainders r with coefficients t such
        // that r ≡ t·λ (mod n), i.e. (r, −t) is in the GLV lattice. Stop at
        // the first remainder below √n ≈ 2^128.
        let sqrt_n = U256 {
            limbs: [0, 0, 1, 0],
        };
        let mut prev = (N, Signed::ZERO); // (r₀, t₀)
        let mut cur = (
            lambda.0,
            Signed {
                neg: false,
                mag: U256::ONE,
            },
        ); // (r₁, t₁)
        while cur.0 >= sqrt_n {
            let (q, r2) = prev.0.div_rem(&cur.0);
            let t2 = prev.1.sub(&cur.1.mul_u(&q));
            prev = std::mem::replace(&mut cur, (r2, t2));
        }
        let (q, r2) = prev.0.div_rem(&cur.0);
        let t2 = prev.1.sub(&cur.1.mul_u(&q));
        let v1 = (
            Signed {
                neg: false,
                mag: cur.0,
            },
            cur.1.neg(),
        );
        // v₂: the shorter of the neighbours (r₋, −t₋), (r₊, −t₊).
        let cand_lo = (
            Signed {
                neg: false,
                mag: prev.0,
            },
            prev.1.neg(),
        );
        let cand_hi = (
            Signed {
                neg: false,
                mag: r2,
            },
            t2.neg(),
        );
        let norm = |v: &(Signed, Signed)| std::cmp::max(v.0.mag, v.1.mag);
        let v2 = if norm(&cand_lo) <= norm(&cand_hi) {
            cand_lo
        } else {
            cand_hi
        };

        // d = a1·b2 − a2·b1 must be ±n (the lattice has index n in Z²).
        let p1 = v1.0.mag.widening_mul(&v2.1.mag);
        let p1_neg = v1.0.neg ^ v2.1.neg;
        let p2 = v2.0.mag.widening_mul(&v1.1.mag);
        let p2_neg = v2.0.neg ^ v1.1.neg;
        let (d_mag, d_neg) = sub_wide_signed(&p1, p1_neg, &p2, p2_neg);
        assert!(d_mag[4..].iter().all(|&l| l == 0), "determinant overflow");
        assert_eq!(
            U256 {
                limbs: [d_mag[0], d_mag[1], d_mag[2], d_mag[3]]
            },
            N,
            "basis determinant is not ±n"
        );

        // β₁ = b2·sign(d), β₂ = −b1·sign(d); gᵢ = round(2^384·|βᵢ|/n).
        let beta1 = Signed {
            neg: v2.1.neg ^ d_neg,
            mag: v2.1.mag,
        };
        let beta2 = Signed {
            neg: !v1.1.neg ^ d_neg,
            mag: v1.1.mag,
        };
        let g_of = |b: &Signed| -> (bool, U256) {
            // (|β| << 384) + n/2, then floor-divide by n.
            let m = b.mag.limbs;
            assert!(m[2] < 2 && m[3] == 0, "basis component exceeds 2^129");
            let mut dividend = [0u64; 9];
            dividend[6..9].copy_from_slice(&m[..3]);
            let half = HALF_N.limbs;
            let mut carry = 0u128;
            for (i, &h) in half.iter().enumerate() {
                let t = dividend[i] as u128 + h as u128 + carry;
                dividend[i] = t as u64;
                carry = t >> 64;
            }
            let mut i = 4;
            while carry != 0 {
                let t = dividend[i] as u128 + carry;
                dividend[i] = t as u64;
                carry = t >> 64;
                i += 1;
            }
            let (q, _) = div_wide(&dividend, &N);
            assert!(q[4..].iter().all(|&l| l == 0), "g does not fit 256 bits");
            (
                b.neg,
                U256 {
                    limbs: [q[0], q[1], q[2], q[3]],
                },
            )
        };
        let g1 = g_of(&beta1);
        let g2 = g_of(&beta2);

        let as_scalar = |s: &Signed| -> (bool, Scalar) {
            debug_assert!(s.mag < N);
            (s.neg, Scalar(s.mag))
        };
        Glv {
            beta,
            lambda,
            a1: as_scalar(&v1.0),
            b1: as_scalar(&v1.1),
            a2: as_scalar(&v2.0),
            b2: as_scalar(&v2.1),
            g1,
            g2,
        }
    }

    /// Decompose `k ≡ k₁ + λ·k₂ (mod n)` with both halves ~128 bits.
    pub(crate) fn split(&self, k: &Scalar) -> (SplitScalar, SplitScalar) {
        // cᵢ = round(k·gᵢ/2^384), carrying βᵢ's sign.
        let round_shift = |g: &U256| -> U256 {
            let mut w = k.0.widening_mul(g);
            let t = w[5] as u128 + (1u128 << 63);
            w[5] = t as u64;
            let mut carry = (t >> 64) as u64;
            for limb in &mut w[6..8] {
                let t = *limb as u128 + carry as u128;
                *limb = t as u64;
                carry = (t >> 64) as u64;
            }
            debug_assert_eq!(carry, 0, "product of reduced inputs fits 512 bits");
            U256 {
                limbs: [w[6], w[7], 0, 0],
            }
        };
        let c1 = (self.g1.0, Scalar(round_shift(&self.g1.1)));
        let c2 = (self.g2.0, Scalar(round_shift(&self.g2.1)));

        let term = |c: &(bool, Scalar), v: &(bool, Scalar)| -> Scalar {
            let p = c.1.mul(&v.1);
            if c.0 ^ v.0 {
                p.neg()
            } else {
                p
            }
        };
        // k₁ = k − c₁a₁ − c₂a₂, k₂ = −(c₁b₁ + c₂b₂), all mod n.
        let k1 = k
            .add(&term(&c1, &self.a1).neg())
            .add(&term(&c2, &self.a2).neg());
        let k2 = term(&c1, &self.b1).add(&term(&c2, &self.b2)).neg();

        debug_assert_eq!(
            &k1.add(&k2.mul(&self.lambda)),
            k,
            "GLV split lost the scalar"
        );

        // Centered lift: values above n/2 are small negatives.
        let lift = |s: Scalar| -> SplitScalar {
            if s.0 > HALF_N {
                SplitScalar {
                    neg: true,
                    mag: s.neg(),
                }
            } else {
                SplitScalar { neg: false, mag: s }
            }
        };
        (lift(k1), lift(k2))
    }
}

/// `a·sa − b·sb` over 512-bit magnitudes, returning sign + magnitude.
fn sub_wide_signed(a: &[u64; 8], a_neg: bool, b: &[u64; 8], b_neg: bool) -> ([u64; 8], bool) {
    if a_neg != b_neg {
        // Opposite signs: magnitudes add, sign follows `a`.
        let mut out = [0u64; 8];
        let mut carry = 0u128;
        for i in 0..8 {
            let t = a[i] as u128 + b[i] as u128 + carry;
            out[i] = t as u64;
            carry = t >> 64;
        }
        assert_eq!(carry, 0, "wide signed overflow");
        return (out, a_neg);
    }
    // Same sign: subtract the smaller magnitude.
    let a_ge = a
        .iter()
        .zip(b.iter())
        .rev()
        .find(|(x, y)| x != y)
        .map(|(x, y)| x > y)
        .unwrap_or(true);
    let (hi, lo, neg) = if a_ge { (a, b, a_neg) } else { (b, a, !a_neg) };
    let mut out = [0u64; 8];
    let mut borrow = 0u64;
    for i in 0..8 {
        let (d1, b1) = hi[i].overflowing_sub(lo[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        out[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0);
    let zero = out.iter().all(|&l| l == 0);
    (out, neg && !zero)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_and_lambda_are_primitive_cube_roots() {
        let glv = params();
        let b = &glv.beta;
        assert_ne!(*b, Fe(U256::ONE));
        assert_eq!(b.mul(b).mul(b), Fe(U256::ONE));
        let l = &glv.lambda;
        assert_ne!(*l, Scalar::ONE);
        assert_eq!(l.mul(l).mul(l), Scalar::ONE);
    }

    #[test]
    fn endomorphism_is_lambda_multiplication() {
        let glv = params();
        for seed in 1u64..6 {
            let k = Scalar::from_u64(seed * 7 + 1);
            let p = Affine::generator().mul(&k);
            let (x, y) = p.coords().unwrap();
            let phi = Affine::Point {
                x: x.mul(&glv.beta),
                y,
            };
            assert_eq!(p.mul(&glv.lambda), phi, "φ(P) ≠ λ·P at seed {seed}");
        }
    }

    #[test]
    fn split_reconstructs_and_is_short() {
        let glv = params();
        let bound = U256 {
            limbs: [0, 0, 4, 0], // 2^130: generous vs the theoretical ~2^129
        };
        let mut cases: Vec<Scalar> = (0u64..32)
            .map(|i| Scalar::from_be_bytes_reduced(&crate::hash::sha256(&i.to_le_bytes())))
            .collect();
        cases.push(Scalar::ZERO);
        cases.push(Scalar::ONE);
        cases.push(Scalar(N.overflowing_sub(&U256::ONE).0));
        cases.push(Scalar(HALF_N));
        cases.push(glv.lambda);
        for k in &cases {
            let (k1, k2) = glv.split(k);
            let signed = |s: &SplitScalar| if s.neg { s.mag.neg() } else { s.mag };
            let back = signed(&k1).add(&signed(&k2).mul(&glv.lambda));
            assert_eq!(&back, k, "split does not reconstruct");
            assert!(k1.mag.0 < bound, "k1 too long for {k:?}");
            assert!(k2.mag.0 < bound, "k2 too long for {k:?}");
        }
    }
}
