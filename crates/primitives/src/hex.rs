//! Minimal hex encoding/decoding.
//!
//! Kept dependency-free; used for `Display` impls on digests and for test
//! vectors throughout the workspace.

/// Encode `bytes` as a lowercase hex string.
pub fn encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0x0f) as usize] as char);
    }
    out
}

/// Error returned by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HexError {
    /// The input length is odd.
    OddLength,
    /// A character outside `[0-9a-fA-F]` at the given byte offset.
    InvalidChar(usize),
}

impl std::fmt::Display for HexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HexError::OddLength => write!(f, "hex string has odd length"),
            HexError::InvalidChar(i) => write!(f, "invalid hex character at offset {i}"),
        }
    }
}

impl std::error::Error for HexError {}

fn nibble(c: u8, pos: usize) -> Result<u8, HexError> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        _ => Err(HexError::InvalidChar(pos)),
    }
}

/// Decode a hex string into bytes.
pub fn decode(s: &str) -> Result<Vec<u8>, HexError> {
    let b = s.as_bytes();
    if !b.len().is_multiple_of(2) {
        return Err(HexError::OddLength);
    }
    let mut out = Vec::with_capacity(b.len() / 2);
    for i in (0..b.len()).step_by(2) {
        out.push((nibble(b[i], i)? << 4) | nibble(b[i + 1], i + 1)?);
    }
    Ok(out)
}

/// Decode a hex string into a fixed-size array.
pub fn decode_array<const N: usize>(s: &str) -> Result<[u8; N], HexError> {
    let v = decode(s)?;
    if v.len() != N {
        return Err(HexError::OddLength);
    }
    let mut out = [0u8; N];
    out.copy_from_slice(&v);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data = [0u8, 1, 2, 0xab, 0xcd, 0xef, 0xff];
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("ABCDEF").unwrap(), vec![0xab, 0xcd, 0xef]);
    }

    #[test]
    fn odd_length_rejected() {
        assert_eq!(decode("abc"), Err(HexError::OddLength));
    }

    #[test]
    fn invalid_char_rejected() {
        assert_eq!(decode("zz"), Err(HexError::InvalidChar(0)));
        assert_eq!(decode("aag "), Err(HexError::InvalidChar(2)));
    }

    #[test]
    fn known_vector() {
        assert_eq!(encode(b"hello"), "68656c6c6f");
        assert_eq!(decode("68656c6c6f").unwrap(), b"hello");
    }
}
