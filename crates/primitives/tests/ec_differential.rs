//! Differential tests: the EC fast path (comb/wNAF tables, batch
//! normalization, eGCD inversion, projective x-comparison) against the
//! reference double-and-add ladder that predates it.
//!
//! The reference implementations (`Jacobian::mul`, `Jacobian::shamir_mul`,
//! `ecdsa::verify_reference`, `Fe::invert_fermat`, `Scalar::invert_fermat`)
//! are kept byte-for-byte stable precisely so these tests pin the fast path
//! to known-good behavior over adversarial scalar shapes: zero, one, powers
//! of two straddling limb boundaries, the group order's neighborhood, and a
//! deterministic pseudo-random sweep.

use ebv_primitives::ec::ecdsa::{self, Signature};
use ebv_primitives::ec::field::Fe;
use ebv_primitives::ec::keys::{PrivateKey, PublicKey};
use ebv_primitives::ec::point::{lincomb_gen, Affine, Jacobian, PointTable};
use ebv_primitives::ec::scalar::{Scalar, HALF_N, N};
use ebv_primitives::hash::sha256;
use ebv_primitives::u256::U256;

/// `2^k` as a U256 (`k < 256`).
fn pow2(k: usize) -> U256 {
    let mut limbs = [0u64; 4];
    limbs[k / 64] = 1u64 << (k % 64);
    U256 { limbs }
}

/// Scalars chosen to stress limb boundaries, wNAF carry chains and the
/// top of the scalar range.
fn edge_scalars() -> Vec<Scalar> {
    let mut out = vec![
        Scalar::ZERO,
        Scalar::ONE,
        Scalar::from_u64(2),
        Scalar::from_u64(3),
        Scalar::from_u64(0xffff_ffff_ffff_ffff),
    ];
    for k in [31usize, 63, 64, 127, 128, 191, 255] {
        let p = pow2(k);
        out.push(Scalar::from_be_bytes_reduced(&p.to_be_bytes()));
        out.push(Scalar::from_be_bytes_reduced(
            &p.overflowing_sub(&U256::ONE).0.to_be_bytes(),
        ));
        out.push(Scalar::from_be_bytes_reduced(
            &p.overflowing_add(&U256::ONE).0.to_be_bytes(),
        ));
    }
    let n_minus_1 = N.overflowing_sub(&U256::ONE).0;
    let n_minus_2 = N.overflowing_sub(&U256::from_u64(2)).0;
    out.push(Scalar(n_minus_1));
    out.push(Scalar(n_minus_2));
    out.push(Scalar(HALF_N));
    out.push(Scalar(HALF_N.overflowing_add(&U256::ONE).0));
    out.push(Scalar(HALF_N.overflowing_sub(&U256::ONE).0));
    out
}

/// Deterministic scalar stream: a sha256 chain seeded by `seed`, reduced
/// mod n. No RNG so failures replay exactly.
fn sweep_scalars(seed: &[u8], count: usize) -> Vec<Scalar> {
    let mut out = Vec::with_capacity(count);
    let mut state = sha256(seed);
    for _ in 0..count {
        out.push(Scalar::from_be_bytes_reduced(&state));
        state = sha256(&state);
    }
    out
}

#[test]
fn mul_gen_matches_reference_over_edge_scalars() {
    for k in edge_scalars() {
        assert_eq!(
            Affine::mul_gen(&k).to_affine(),
            Affine::G.mul(&k),
            "k = {k:?}"
        );
    }
}

#[test]
fn mul_gen_matches_reference_over_sweep() {
    for k in sweep_scalars(b"mul_gen sweep", 24) {
        assert_eq!(
            Affine::mul_gen(&k).to_affine(),
            Affine::G.mul(&k),
            "k = {k:?}"
        );
    }
}

#[test]
fn lincomb_matches_shamir_over_edge_scalars() {
    let g = Affine::G.to_jacobian();
    let q = g.mul(&Scalar::from_u64(0x5eed));
    let table = PointTable::new(&q.to_affine());
    // Pair each edge scalar with a shifted copy of the list so both inputs
    // see every edge value.
    let edges = edge_scalars();
    for (i, u1) in edges.iter().enumerate() {
        let u2 = &edges[(i + 7) % edges.len()];
        let expected = g.shamir_mul(u1, &q, u2).to_affine();
        assert_eq!(
            lincomb_gen(u1, &table, u2).to_affine(),
            expected,
            "u1 = {u1:?}, u2 = {u2:?}"
        );
    }
}

#[test]
fn lincomb_matches_separate_muls_over_sweep() {
    let g = Affine::G.to_jacobian();
    let scalars = sweep_scalars(b"lincomb sweep", 30);
    for chunk in scalars.chunks(3) {
        let [qk, u1, u2] = chunk else { unreachable!() };
        let q = g.mul(qk);
        let table = PointTable::new(&q.to_affine());
        let expected = g.mul(u1).add_jacobian(&q.mul(u2)).to_affine();
        assert_eq!(lincomb_gen(u1, &table, u2).to_affine(), expected);
    }
}

#[test]
fn wnaf_reconstructs_edge_scalars_at_all_widths() {
    for k in edge_scalars() {
        for w in 2..=8u32 {
            let digits = k.wnaf(w);
            let mut acc = Scalar::ZERO;
            let mut pow = Scalar::ONE;
            let two = Scalar::from_u64(2);
            for &d in &digits {
                if d != 0 {
                    assert!(d % 2 != 0, "even digit in wnaf({w}) of {k:?}");
                    assert!(d.unsigned_abs() < 1 << (w - 1), "digit overflow");
                    let term = pow.mul(&Scalar::from_u64(d.unsigned_abs() as u64));
                    acc = if d > 0 {
                        acc.add(&term)
                    } else {
                        acc.add(&term.neg())
                    };
                }
                pow = pow.mul(&two);
            }
            assert_eq!(acc, k, "wnaf({w}) reconstruction of {k:?}");
        }
    }
}

#[test]
fn batch_to_affine_matches_individual_projection() {
    let g = Affine::G.to_jacobian();
    // Mix infinities into every position of a varied batch.
    let mut points = vec![Jacobian::infinity()];
    for k in sweep_scalars(b"batch", 12) {
        points.push(g.mul(&k));
        points.push(Jacobian::infinity());
    }
    let batch = Jacobian::batch_to_affine(&points);
    assert_eq!(batch.len(), points.len());
    for (i, (b, p)) in batch.iter().zip(&points).enumerate() {
        assert_eq!(*b, p.to_affine(), "index {i}");
    }
    assert!(Jacobian::batch_to_affine(&[]).is_empty());
    assert!(Jacobian::batch_to_affine(&[Jacobian::infinity(); 5])
        .iter()
        .all(|p| p.is_infinity()));
}

#[test]
fn scalar_inversion_matches_fermat_reference() {
    for k in edge_scalars() {
        assert_eq!(k.invert(), k.invert_fermat(), "k = {k:?}");
        if let Some(inv) = k.invert() {
            assert_eq!(k.mul(&inv), Scalar::ONE);
        }
    }
    for k in sweep_scalars(b"scalar inv", 16) {
        assert_eq!(k.invert(), k.invert_fermat(), "k = {k:?}");
    }
}

#[test]
fn field_inversion_matches_fermat_reference() {
    let mut values = vec![Fe::ZERO, Fe::ONE, Fe::from_u64(2)];
    let mut state = sha256(b"field inv");
    for _ in 0..16 {
        // Clamp the top byte so the 32-byte string is always < p.
        let mut b = state;
        b[0] &= 0x7f;
        values.push(Fe::from_be_bytes(&b).expect("below p"));
        state = sha256(&state);
    }
    for v in values {
        assert_eq!(v.invert(), v.invert_fermat(), "v = {v:?}");
        if let Some(inv) = v.invert() {
            assert_eq!(v.mul(&inv), Fe::ONE);
        }
    }
}

#[test]
fn squaring_matches_general_multiplication() {
    let mut state = sha256(b"sqr");
    for _ in 0..32 {
        let v = U256::from_be_bytes(&state);
        assert_eq!(v.widening_sqr(), v.widening_mul(&v));
        state = sha256(&state);
    }
    assert_eq!([0u64; 8], U256::ZERO.widening_sqr());
    let max = U256 {
        limbs: [u64::MAX; 4],
    };
    assert_eq!(max.widening_sqr(), max.widening_mul(&max));
}

/// Both verifiers must agree — accept and reject alike — on valid
/// signatures, every single-component tamper, wrong digests, wrong keys,
/// and structurally odd (zero/high) component values.
#[test]
fn verify_decisions_match_reference() {
    let digests: Vec<[u8; 32]> = (0u64..4).map(|i| sha256(&i.to_le_bytes())).collect();
    for seed in 0..4u64 {
        let sk = PrivateKey::from_seed(seed);
        let pk = *sk.public_key().point();
        let prepared = sk.public_key().prepare();
        for z in &digests {
            let sig = sk.sign(z);
            let cases = [
                sig,
                Signature {
                    r: sig.r.add(&Scalar::ONE),
                    s: sig.s,
                },
                Signature {
                    r: sig.r,
                    s: sig.s.add(&Scalar::ONE),
                },
                Signature {
                    r: sig.r.neg(),
                    s: sig.s,
                },
                Signature {
                    r: sig.r,
                    s: sig.s.neg(), // high-S twin: same curve equation
                },
                Signature {
                    r: Scalar::ZERO,
                    s: sig.s,
                },
                Signature {
                    r: sig.r,
                    s: Scalar::ZERO,
                },
                Signature {
                    r: Scalar::ONE,
                    s: Scalar::ONE,
                },
            ];
            for (i, cand) in cases.iter().enumerate() {
                let fast = ecdsa::verify(z, cand, &pk);
                let reference = ecdsa::verify_reference(z, cand, &pk);
                // The fast path drops the redundant r/s zero pre-check; the
                // zero cases still agree because a zero component can never
                // satisfy the final x-equation.
                if cand.r.is_zero() || cand.s.is_zero() {
                    assert!(!fast, "zero component accepted (case {i})");
                    assert!(!reference, "zero component accepted by ref (case {i})");
                } else {
                    assert_eq!(fast, reference, "seed {seed}, case {i}");
                }
                assert_eq!(prepared.verify(z, cand), fast, "prepared disagrees");
            }
            // Cross-digest rejections agree too.
            for other in &digests {
                if other != z {
                    assert_eq!(
                        ecdsa::verify(other, &sig, &pk),
                        ecdsa::verify_reference(other, &sig, &pk)
                    );
                }
            }
        }
    }
}

/// The RFC 6979 known vector must round-trip through the fast path, the
/// reference path, and the compact encoding.
#[test]
fn known_vector_passes_both_paths() {
    let sk = PrivateKey::from_scalar(Scalar::ONE).unwrap();
    let z = sha256(b"Satoshi Nakamoto");
    let sig = sk.sign(&z);
    let pk = sk.public_key();
    assert!(ecdsa::verify(&z, &sig, pk.point()));
    assert!(ecdsa::verify_reference(&z, &sig, pk.point()));
    let parsed = Signature::from_compact(&sig.to_compact()).unwrap();
    assert!(pk.prepare().verify(&z, &parsed));
}

/// Public keys derived via the comb table must equal the reference ladder's,
/// and parse back identically from their compressed encoding.
#[test]
fn key_derivation_matches_reference_ladder() {
    for seed in 0..8u64 {
        let sk = PrivateKey::from_seed(seed);
        let fast = *sk.public_key().point();
        let reference = Affine::generator().mul(sk.scalar());
        assert_eq!(fast, reference, "seed {seed}");
        let encoded = sk.public_key().to_compressed();
        assert_eq!(
            PublicKey::from_compressed(&encoded).unwrap(),
            sk.public_key()
        );
    }
}
