//! Differential suite for batch ECDSA verification: [`BatchVerifier`]
//! against per-signature [`PreparedPublicKey::verify`] over edge scalars,
//! mixed valid/invalid batches, odd-parity nonce points, and a
//! cancellation-attack probe.
//!
//! The contract under test: for every pushed item, the batch verdict
//! equals the individual verification result — the batch is a pure
//! performance layer with no behavioral surface.

use ebv_primitives::ec::field::Fe;
use ebv_primitives::ec::{
    ecdsa, Affine, BatchVerifier, PreparedPublicKey, PrivateKey, Scalar, Signature,
};
use ebv_primitives::hash::sha256;

/// Assert that a batch over `items` produces exactly the per-item
/// individual verdicts, and return those verdicts.
fn assert_differential(items: &[([u8; 32], Signature, &PreparedPublicKey)]) -> Vec<bool> {
    let mut batch = BatchVerifier::new();
    for (z, sig, key) in items {
        batch.push(*z, *sig, key);
    }
    let out = batch.verify();
    let individual: Vec<bool> = items
        .iter()
        .map(|(z, sig, key)| key.verify(z, sig))
        .collect();
    assert_eq!(out.verdicts, individual, "batch diverged from individual");
    assert_eq!(out.all_valid, individual.iter().all(|&v| v));
    individual
}

#[test]
fn edge_scalar_signatures_match_individual() {
    let keys: Vec<PrivateKey> = (0..4u64).map(PrivateKey::from_seed).collect();
    let prepared: Vec<PreparedPublicKey> = keys.iter().map(|k| k.public_key().prepare()).collect();
    let n_minus_1 = Scalar::from_u64(1).neg(); // n − 1 via −1 mod n
    let mut items: Vec<([u8; 32], Signature, &PreparedPublicKey)> = Vec::new();

    // Valid signatures over edge digests: all-zero (z ≡ 0, so the batch's
    // generator coefficient contribution u = 0) and all-ones (z reduced
    // mod n).
    for (i, digest) in [[0u8; 32], [0xffu8; 32]].into_iter().enumerate() {
        let sk = &keys[i % keys.len()];
        items.push((digest, sk.sign(&digest), &prepared[i % keys.len()]));
    }
    // Synthetic edge-component signatures: r and s pinned to 1 and n−1 in
    // all combinations. None verifies; the batch must agree (these also
    // exercise the unliftable-r and high-s recover paths).
    let z = sha256(b"edge components");
    for r in [Scalar::from_u64(1), n_minus_1] {
        for s in [Scalar::from_u64(1), n_minus_1] {
            items.push((z, Signature { r, s }, &prepared[0]));
        }
    }
    // Zero components: rejected without touching the equation.
    items.push((
        z,
        Signature {
            r: Scalar::ZERO,
            s: Scalar::from_u64(1),
        },
        &prepared[1],
    ));
    items.push((
        z,
        Signature {
            r: Scalar::from_u64(1),
            s: Scalar::ZERO,
        },
        &prepared[1],
    ));
    // And a couple of ordinary valid signatures so the batch is mixed.
    for i in 0..3u64 {
        let z = sha256(format!("ordinary {i}").as_bytes());
        let k = (i as usize) % keys.len();
        items.push((z, keys[k].sign(&z), &prepared[k]));
    }

    let verdicts = assert_differential(&items);
    assert!(verdicts[0] && verdicts[1], "edge digests sign validly");
    assert!(
        verdicts[2..8].iter().all(|&v| !v),
        "edge components never verify"
    );
    assert!(verdicts[8..].iter().all(|&v| v), "fillers are valid");
}

#[test]
fn r_plus_n_candidate_is_considered() {
    // When r < p − n, the nonce x-coordinate may have been r + n before
    // reduction mod n. Those r values are a ~2⁻¹²⁸ sliver of the space, so
    // no honest signature hits one; what matters is that such synthetic
    // signatures resolve identically to individual verification.
    let sk = PrivateKey::from_seed(77);
    let prepared = sk.public_key().prepare();
    let z = sha256(b"r plus n");
    // r = 1 is far below p − n, so both x = 1 and x = 1 + n are candidate
    // lifts; the signature is invalid either way.
    let item = (
        z,
        Signature {
            r: Scalar::from_u64(1),
            s: Scalar::from_u64(3),
        },
        &prepared,
    );
    assert_differential(&[item]);
}

#[test]
fn mixed_valid_invalid_batches_match_individual() {
    let keys: Vec<PrivateKey> = (0..5u64).map(|i| PrivateKey::from_seed(100 + i)).collect();
    let prepared: Vec<PreparedPublicKey> = keys.iter().map(|k| k.public_key().prepare()).collect();
    let mut items: Vec<([u8; 32], Signature, &PreparedPublicKey)> = Vec::new();
    for i in 0..32usize {
        let k = i % keys.len();
        let z = sha256(format!("mixed {i}").as_bytes());
        let mut sig = keys[k].sign(&z);
        let mut key = &prepared[k];
        match i % 7 {
            // Tampered s: stays batchable, fails the equation.
            2 => sig.s = sig.s.add(&Scalar::from_u64(1)),
            // Tampered r: usually unliftable, takes the non-batchable path.
            3 => sig.r = sig.r.add(&Scalar::from_u64(1)),
            // Signature bound to the wrong key.
            5 => key = &prepared[(k + 1) % keys.len()],
            _ => {}
        }
        items.push((z, sig, key));
    }
    let verdicts = assert_differential(&items);
    for (i, &v) in verdicts.iter().enumerate() {
        assert_eq!(v, !matches!(i % 7, 2 | 3 | 5), "item {i}");
    }
}

#[test]
fn odd_parity_plain_signatures_fall_back_and_still_verify() {
    // `ecdsa::sign` does not grind for even R, so about half of its
    // signatures have an odd-parity effective nonce point. The batch lifts
    // the wrong candidate for those, fails the equation, and must settle
    // them individually — with a `true` verdict, since they are valid.
    let sk = PrivateKey::from_seed(9);
    let prepared = sk.public_key().prepare();
    let odd = (0..64u64)
        .map(|i| {
            let z = sha256(format!("parity probe {i}").as_bytes());
            (z, ecdsa::sign(&z, sk.scalar()))
        })
        .find(|(z, sig)| {
            // Effective R = u·G + v·Q; odd-parity iff it differs from the
            // even lift of r.
            let w = sig.s.invert().unwrap();
            let u = Scalar::from_be_bytes_reduced(z).mul(&w);
            let v = sig.r.mul(&w);
            let r_point = Affine::mul_gen(&u)
                .add_jacobian(&sk.public_key().point().to_jacobian().mul(&v))
                .to_affine();
            let even_lift =
                Fe::from_be_bytes(&sig.r.to_be_bytes()).and_then(|x| Affine::lift_x(x, false));
            even_lift != Some(r_point)
        })
        .expect("64 plain signatures contain an odd-parity one");

    // Surround it with even-R signatures from the key API.
    let mut items: Vec<([u8; 32], Signature, &PreparedPublicKey)> = (0..6u64)
        .map(|i| {
            let z = sha256(format!("even filler {i}").as_bytes());
            (z, sk.sign(&z), &prepared)
        })
        .collect();
    items.insert(3, (odd.0, odd.1, &prepared));

    let mut batch = BatchVerifier::new();
    for (z, sig, key) in &items {
        batch.push(*z, *sig, key);
    }
    let out = batch.verify();
    assert!(out.all_valid, "odd-parity signature is valid and must pass");
    // The odd item cannot be certified by the equation (wrong lift), so
    // bisection must have reached at least one individual check.
    assert!(out.stats.individual_checks >= 1);
    assert!(out.stats.equation_checks >= 2);
}

#[test]
fn cancellation_attack_is_rejected() {
    // Craft two invalid signatures whose defects are +t·G and −t·G: under
    // *equal* batch coefficients they cancel and the summed equation
    // holds, so a verifier with predictable coefficients would accept two
    // forgeries. The per-batch PRF coefficients must defeat this.
    //
    // Construction: R = k·G with even y and s' = (z + r·d) / (k ± t), so
    // u·G + v·Q = (k ± t)·G = R ± t·G.
    let d = PrivateKey::from_seed(4242);
    let prepared = d.public_key().prepare();
    let t = Scalar::from_u64(12345);

    // Find k whose nonce point has even y (so the batch lifts exactly R).
    let (k, r) = (1u64..)
        .map(|i| Scalar::from_u64(1_000_000 + i))
        .find_map(|k| {
            let point = Affine::mul_gen(&k).to_affine();
            let (x, y) = point.coords().expect("finite");
            let r = Scalar::from_be_bytes_reduced(&x.to_be_bytes());
            // Demand x < n too, so r lifts back to exactly x.
            (!y.is_odd() && !r.is_zero() && x.to_be_bytes() == r.to_be_bytes()).then_some((k, r))
        })
        .expect("even-y nonce points are half the curve");

    let z1 = sha256(b"cancellation probe 1");
    let z2 = sha256(b"cancellation probe 2");
    let craft = |z: &[u8; 32], k_eff: &Scalar| -> Signature {
        let z_scalar = Scalar::from_be_bytes_reduced(z);
        let s = k_eff
            .invert()
            .expect("k ± t nonzero")
            .mul(&z_scalar.add(&r.mul(d.scalar())));
        Signature { r, s }
    };
    let k_minus_t = k.add(&t.neg());
    let sig1 = craft(&z1, &k.add(&t)); // defect +t·G
    let sig2 = craft(&z2, &k_minus_t); // defect −t·G

    // Both are individually invalid…
    assert!(!prepared.verify(&z1, &sig1));
    assert!(!prepared.verify(&z2, &sig2));

    // …and their defects really do cancel: u·G + v·Q equals (k ± t)·G, so
    // the two sides sum to 2k·G = R + R with unit coefficients.
    let lhs = |z: &[u8; 32], sig: &Signature| -> Affine {
        let w = sig.s.invert().expect("s nonzero");
        let u = Scalar::from_be_bytes_reduced(z).mul(&w);
        let v = sig.r.mul(&w);
        Affine::mul_gen(&u)
            .add_jacobian(&d.public_key().point().to_jacobian().mul(&v))
            .to_affine()
    };
    assert_eq!(lhs(&z1, &sig1), Affine::mul_gen(&k.add(&t)).to_affine());
    assert_eq!(lhs(&z2, &sig2), Affine::mul_gen(&k_minus_t).to_affine());
    let minus_2k_g = Affine::mul_gen(&k).dbl().to_affine().neg();
    let defect_sum = lhs(&z1, &sig1)
        .to_jacobian()
        .add_jacobian(&lhs(&z2, &sig2).to_jacobian())
        .add_jacobian(&minus_2k_g.to_jacobian());
    assert!(
        defect_sum.is_infinity(),
        "probe construction must cancel under unit coefficients"
    );

    // The batch must reject both — alone, together, and embedded among
    // valid signatures.
    let honest: Vec<([u8; 32], Signature)> = (0..4u64)
        .map(|i| {
            let z = sha256(format!("honest {i}").as_bytes());
            (z, d.sign(&z))
        })
        .collect();
    let mut items: Vec<([u8; 32], Signature, &PreparedPublicKey)> = honest
        .iter()
        .map(|(z, sig)| (*z, *sig, &prepared))
        .collect();
    items.insert(1, (z1, sig1, &prepared));
    items.insert(4, (z2, sig2, &prepared));
    let verdicts = assert_differential(&items);
    assert!(!verdicts[1] && !verdicts[4], "forged pair must be rejected");
    assert_eq!(verdicts.iter().filter(|&&v| v).count(), 4);
}
