//! Micro-benchmark: batched vs individual ECDSA verification at the
//! crypto layer, isolated from block validation.
//!
//! Measures one [`BatchVerifier`] pass over a full 64-signature chunk
//! (the node's `SV_BATCH_MAX`) against per-signature
//! `PreparedPublicKey::verify`, with 20 distinct keys so the key-dedup
//! path is realistic. Useful for checking the raw speedup ceiling when
//! tuning the multi-scalar ladder or field arithmetic:
//!
//! ```text
//! cargo run --release -p ebv-primitives --example bvbench
//! ```

use ebv_primitives::ec::{BatchVerifier, PrivateKey};
use ebv_primitives::hash::sha256;
use std::time::Instant;

fn main() {
    let n = 64usize;
    let reps = 20u32;
    let keys: Vec<PrivateKey> = (0..20u64).map(PrivateKey::from_seed).collect();
    let items: Vec<([u8; 32], _, usize)> = (0..n)
        .map(|i| {
            let k = i % keys.len();
            let z = sha256(format!("item {i}").as_bytes());
            (z, keys[k].sign(&z), k)
        })
        .collect();
    let prepared: Vec<_> = keys.iter().map(|k| k.public_key().prepare()).collect();

    let t0 = Instant::now();
    for _ in 0..reps {
        for (z, sig, k) in &items {
            assert!(prepared[*k].verify(z, sig));
        }
    }
    let indiv = t0.elapsed() / reps;

    let t1 = Instant::now();
    for _ in 0..reps {
        let mut b = BatchVerifier::new();
        for (z, sig, k) in &items {
            b.push(*z, *sig, &prepared[*k]);
        }
        assert!(b.verify().all_valid);
    }
    let batch = t1.elapsed() / reps;

    println!(
        "{n} sigs / {} keys: individual {indiv:?}  batch {batch:?}  speedup {:.2}x",
        keys.len(),
        indiv.as_secs_f64() / batch.as_secs_f64()
    );
}
