//! Robustness: the interpreter must never panic, hang, or blow the stack
//! on arbitrary byte strings — malicious peers control script contents.

use ebv_script::{verify_spend, AcceptAllChecker, Engine, RejectAllChecker, Script};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let script = Script::from_bytes(bytes);
        let mut engine = Engine::new(&RejectAllChecker);
        // Errors are fine; panics are not.
        let _ = engine.execute(&script);
    }

    #[test]
    fn random_spend_pairs_never_panic(
        unlocking in prop::collection::vec(any::<u8>(), 0..256),
        locking in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = verify_spend(
            &Script::from_bytes(unlocking),
            &Script::from_bytes(locking),
            &AcceptAllChecker,
        );
    }

    #[test]
    fn push_only_scripts_execute(pushes in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..75), 0..50,
    )) {
        let mut b = ebv_script::Builder::new();
        for p in &pushes {
            b = b.push_data(p);
        }
        let script = b.into_script();
        let mut engine = Engine::new(&RejectAllChecker);
        engine.execute(&script).expect("push-only scripts always succeed");
        assert_eq!(engine.stack().len(), pushes.len());
    }

    #[test]
    fn instruction_iterator_terminates(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let script = Script::from_bytes(bytes);
        // The iterator must always make progress: bounded by input length.
        let mut count = 0usize;
        for ins in script.instructions() {
            count += 1;
            if ins.is_err() {
                break;
            }
            assert!(count <= 2048, "iterator failed to terminate");
        }
    }
}
