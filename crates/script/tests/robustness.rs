//! Robustness: the interpreter must never panic, hang, or blow the stack
//! on arbitrary byte strings — malicious peers control script contents.
//!
//! Previously proptest-driven; the offline build environment has no
//! registry, so the same fuzzing now runs off the local deterministic
//! `rand` shim with fixed seeds and explicit case loops.

use ebv_script::{verify_spend, AcceptAllChecker, Engine, RejectAllChecker, Script};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 512;

fn random_bytes(rng: &mut SmallRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0usize..max_len);
    (0..len).map(|_| rng.gen::<u8>()).collect()
}

#[test]
fn random_bytes_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0xf422_0001);
    for _ in 0..CASES {
        let script = Script::from_bytes(random_bytes(&mut rng, 512));
        let mut engine = Engine::new(&RejectAllChecker);
        // Errors are fine; panics are not.
        let _ = engine.execute(&script);
    }
}

#[test]
fn random_spend_pairs_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0xf422_0002);
    for _ in 0..CASES {
        let unlocking = random_bytes(&mut rng, 256);
        let locking = random_bytes(&mut rng, 256);
        let _ = verify_spend(
            &Script::from_bytes(unlocking),
            &Script::from_bytes(locking),
            &AcceptAllChecker,
        );
    }
}

#[test]
fn push_only_scripts_execute() {
    let mut rng = SmallRng::seed_from_u64(0xf422_0003);
    for case in 0..CASES {
        let pushes: Vec<Vec<u8>> = (0..rng.gen_range(0usize..50))
            .map(|_| random_bytes(&mut rng, 75))
            .collect();
        let mut b = ebv_script::Builder::new();
        for p in &pushes {
            b = b.push_data(p);
        }
        let script = b.into_script();
        let mut engine = Engine::new(&RejectAllChecker);
        engine
            .execute(&script)
            .expect("push-only scripts always succeed");
        assert_eq!(engine.stack().len(), pushes.len(), "case {case}");
    }
}

#[test]
fn instruction_iterator_terminates() {
    let mut rng = SmallRng::seed_from_u64(0xf422_0004);
    for _ in 0..CASES {
        let script = Script::from_bytes(random_bytes(&mut rng, 2048));
        // The iterator must always make progress: bounded by input length.
        let mut count = 0usize;
        for ins in script.instructions() {
            count += 1;
            if ins.is_err() {
                break;
            }
            assert!(count <= 2048, "iterator failed to terminate");
        }
    }
}
