//! The script interpreter.
//!
//! Executes one script over a stack, with Bitcoin-style resource limits and
//! `IF/ELSE/ENDIF` conditional execution. [`verify_spend`] wires the
//! unlocking and locking scripts together the way input checking does.

use crate::num::ScriptNum;
use crate::opcodes::*;
use crate::script::{Instruction, Script};
use ebv_primitives::hash::{hash160, ripemd160, sha256, sha256d};

/// Execution failures. Any error means the spend is invalid.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScriptError {
    /// A push ran past the end of the script.
    TruncatedPush,
    /// Stack underflow for the executed opcode.
    StackUnderflow,
    /// Alt-stack underflow.
    AltStackUnderflow,
    /// `OP_ELSE`/`OP_ENDIF` without a matching `OP_IF`.
    UnbalancedConditional,
    /// `OP_VERIFY`-style opcode saw a false value.
    VerifyFailed,
    /// `OP_RETURN` executed.
    OpReturn,
    /// Unknown or disabled opcode executed.
    BadOpcode(u8),
    /// Numeric operand longer than 4 bytes.
    NumberOverflow,
    /// Numeric operand not minimally encoded.
    NonMinimalNumber,
    /// Script exceeds the size limit.
    ScriptTooLarge,
    /// Too many non-push opcodes.
    TooManyOps,
    /// Combined stack depth limit exceeded.
    StackOverflow,
    /// A pushed element exceeds the element-size limit.
    ElementTooLarge,
    /// Final stack empty or top element false.
    EvalFalse,
    /// Malformed multisig key/signature counts.
    BadMultisigCount,
    /// `OP_PICK`/`OP_ROLL` index out of range.
    BadPickIndex,
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ScriptError {}

/// Resource limits (Bitcoin's consensus values).
#[derive(Clone, Copy, Debug)]
pub struct ExecLimits {
    /// Maximum script size in bytes.
    pub max_script_size: usize,
    /// Maximum number of executed non-push opcodes per script.
    pub max_ops: usize,
    /// Maximum combined main+alt stack depth.
    pub max_stack: usize,
    /// Maximum size of a stack element.
    pub max_element: usize,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_script_size: 10_000,
            max_ops: 201,
            max_stack: 1000,
            max_element: 520,
        }
    }
}

/// Callback used by the `OP_CHECKSIG` family. The chain layer supplies an
/// implementation binding signatures to the spending transaction's digest.
pub trait SignatureChecker {
    /// `sig` is the full signature push (compact signature plus sighash-type
    /// byte); `pubkey` is the compressed public key push.
    fn check_sig(&self, sig: &[u8], pubkey: &[u8]) -> bool;

    /// `OP_CHECKLOCKTIMEVERIFY` support: whether the spending transaction's
    /// lock time satisfies the script's `required` value. The default
    /// (no transaction context) rejects, failing closed.
    fn check_lock_time(&self, _required: i64) -> bool {
        false
    }
}

/// Interpreter state for executing scripts over a shared stack.
pub struct Engine<'a> {
    checker: &'a dyn SignatureChecker,
    limits: ExecLimits,
    stack: Vec<Vec<u8>>,
    alt_stack: Vec<Vec<u8>>,
}

impl<'a> Engine<'a> {
    pub fn new(checker: &'a dyn SignatureChecker) -> Engine<'a> {
        Engine::with_limits(checker, ExecLimits::default())
    }

    pub fn with_limits(checker: &'a dyn SignatureChecker, limits: ExecLimits) -> Engine<'a> {
        Engine {
            checker,
            limits,
            stack: Vec::new(),
            alt_stack: Vec::new(),
        }
    }

    /// The current main stack (top = last).
    pub fn stack(&self) -> &[Vec<u8>] {
        &self.stack
    }

    fn pop(&mut self) -> Result<Vec<u8>, ScriptError> {
        self.stack.pop().ok_or(ScriptError::StackUnderflow)
    }

    fn pop_num(&mut self) -> Result<i64, ScriptError> {
        let e = self.pop()?;
        Ok(ScriptNum::decode(&e, 4)?.0)
    }

    fn pop_bool(&mut self) -> Result<bool, ScriptError> {
        Ok(ScriptNum::is_truthy(&self.pop()?))
    }

    fn push(&mut self, e: Vec<u8>) -> Result<(), ScriptError> {
        if e.len() > self.limits.max_element {
            return Err(ScriptError::ElementTooLarge);
        }
        if self.stack.len() + self.alt_stack.len() + 1 > self.limits.max_stack {
            return Err(ScriptError::StackOverflow);
        }
        self.stack.push(e);
        Ok(())
    }

    fn push_num(&mut self, v: i64) -> Result<(), ScriptError> {
        self.push(ScriptNum(v).encode())
    }

    fn push_bool(&mut self, v: bool) -> Result<(), ScriptError> {
        self.push(if v { vec![1] } else { Vec::new() })
    }

    fn peek(&self, depth: usize) -> Result<&Vec<u8>, ScriptError> {
        if depth >= self.stack.len() {
            return Err(ScriptError::StackUnderflow);
        }
        Ok(&self.stack[self.stack.len() - 1 - depth])
    }

    /// Execute one script against the current stack.
    pub fn execute(&mut self, script: &Script) -> Result<(), ScriptError> {
        if script.len() > self.limits.max_script_size {
            return Err(ScriptError::ScriptTooLarge);
        }
        // Conditional-execution stack: one bool per open IF; execution is
        // live only when all are true.
        let mut cond: Vec<bool> = Vec::new();
        let mut op_count = 0usize;

        for ins in script.instructions() {
            let ins = ins?;
            let live = cond.iter().all(|&c| c);

            match ins {
                Instruction::Push(data) => {
                    if live {
                        self.push(data.to_vec())?;
                    }
                }
                Instruction::Op(op) => {
                    op_count += 1;
                    if op_count > self.limits.max_ops {
                        return Err(ScriptError::TooManyOps);
                    }
                    // Conditional opcodes run even in dead branches (to
                    // track nesting); everything else only when live.
                    match op {
                        OP_IF | OP_NOTIF => {
                            let value = if live {
                                let v = self.pop_bool()?;
                                if op == OP_NOTIF {
                                    !v
                                } else {
                                    v
                                }
                            } else {
                                false
                            };
                            cond.push(value);
                        }
                        OP_ELSE => {
                            let top = cond.last_mut().ok_or(ScriptError::UnbalancedConditional)?;
                            *top = !*top;
                        }
                        OP_ENDIF => {
                            cond.pop().ok_or(ScriptError::UnbalancedConditional)?;
                        }
                        _ if !live => {}
                        _ => self.execute_op(op)?,
                    }
                }
            }
        }
        if !cond.is_empty() {
            return Err(ScriptError::UnbalancedConditional);
        }
        Ok(())
    }

    fn execute_op(&mut self, op: u8) -> Result<(), ScriptError> {
        match op {
            _ if is_small_int(op) => self.push_num(small_int_value(op))?,
            OP_1NEGATE => self.push_num(-1)?,
            OP_NOP => {}
            OP_VERIFY => {
                if !self.pop_bool()? {
                    return Err(ScriptError::VerifyFailed);
                }
            }
            OP_RETURN => return Err(ScriptError::OpReturn),

            OP_TOALTSTACK => {
                let e = self.pop()?;
                self.alt_stack.push(e);
            }
            OP_FROMALTSTACK => {
                let e = self.alt_stack.pop().ok_or(ScriptError::AltStackUnderflow)?;
                self.push(e)?;
            }
            OP_2DROP => {
                self.pop()?;
                self.pop()?;
            }
            OP_2DUP => {
                let a = self.peek(1)?.clone();
                let b = self.peek(0)?.clone();
                self.push(a)?;
                self.push(b)?;
            }
            OP_3DUP => {
                let a = self.peek(2)?.clone();
                let b = self.peek(1)?.clone();
                let c = self.peek(0)?.clone();
                self.push(a)?;
                self.push(b)?;
                self.push(c)?;
            }
            OP_IFDUP => {
                let top = self.peek(0)?.clone();
                if ScriptNum::is_truthy(&top) {
                    self.push(top)?;
                }
            }
            OP_DEPTH => {
                let d = self.stack.len() as i64;
                self.push_num(d)?;
            }
            OP_DROP => {
                self.pop()?;
            }
            OP_DUP => {
                let top = self.peek(0)?.clone();
                self.push(top)?;
            }
            OP_NIP => {
                let top = self.pop()?;
                self.pop()?;
                self.push(top)?;
            }
            OP_OVER => {
                let e = self.peek(1)?.clone();
                self.push(e)?;
            }
            OP_PICK | OP_ROLL => {
                let n = self.pop_num()?;
                if n < 0 || n as usize >= self.stack.len() {
                    return Err(ScriptError::BadPickIndex);
                }
                let idx = self.stack.len() - 1 - n as usize;
                let e = if op == OP_ROLL {
                    self.stack.remove(idx)
                } else {
                    self.stack[idx].clone()
                };
                self.push(e)?;
            }
            OP_ROT => {
                let c = self.pop()?;
                let b = self.pop()?;
                let a = self.pop()?;
                self.push(b)?;
                self.push(c)?;
                self.push(a)?;
            }
            OP_SWAP => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.push(b)?;
                self.push(a)?;
            }
            OP_TUCK => {
                let b = self.pop()?;
                let a = self.pop()?;
                self.push(b.clone())?;
                self.push(a)?;
                self.push(b)?;
            }

            OP_SIZE => {
                let n = self.peek(0)?.len() as i64;
                self.push_num(n)?;
            }
            OP_EQUAL | OP_EQUALVERIFY => {
                let b = self.pop()?;
                let a = self.pop()?;
                let eq = a == b;
                if op == OP_EQUALVERIFY {
                    if !eq {
                        return Err(ScriptError::VerifyFailed);
                    }
                } else {
                    self.push_bool(eq)?;
                }
            }

            OP_1ADD => {
                let a = self.pop_num()?;
                self.push_num(a + 1)?;
            }
            OP_1SUB => {
                let a = self.pop_num()?;
                self.push_num(a - 1)?;
            }
            OP_NEGATE => {
                let a = self.pop_num()?;
                self.push_num(-a)?;
            }
            OP_ABS => {
                let a = self.pop_num()?;
                self.push_num(a.abs())?;
            }
            OP_NOT => {
                let a = self.pop_num()?;
                self.push_bool(a == 0)?;
            }
            OP_0NOTEQUAL => {
                let a = self.pop_num()?;
                self.push_bool(a != 0)?;
            }
            OP_ADD => {
                let b = self.pop_num()?;
                let a = self.pop_num()?;
                self.push_num(a + b)?;
            }
            OP_SUB => {
                let b = self.pop_num()?;
                let a = self.pop_num()?;
                self.push_num(a - b)?;
            }
            OP_BOOLAND => {
                let b = self.pop_num()?;
                let a = self.pop_num()?;
                self.push_bool(a != 0 && b != 0)?;
            }
            OP_BOOLOR => {
                let b = self.pop_num()?;
                let a = self.pop_num()?;
                self.push_bool(a != 0 || b != 0)?;
            }
            OP_NUMEQUAL | OP_NUMEQUALVERIFY => {
                let b = self.pop_num()?;
                let a = self.pop_num()?;
                if op == OP_NUMEQUALVERIFY {
                    if a != b {
                        return Err(ScriptError::VerifyFailed);
                    }
                } else {
                    self.push_bool(a == b)?;
                }
            }
            OP_NUMNOTEQUAL => {
                let b = self.pop_num()?;
                let a = self.pop_num()?;
                self.push_bool(a != b)?;
            }
            OP_LESSTHAN => {
                let b = self.pop_num()?;
                let a = self.pop_num()?;
                self.push_bool(a < b)?;
            }
            OP_GREATERTHAN => {
                let b = self.pop_num()?;
                let a = self.pop_num()?;
                self.push_bool(a > b)?;
            }
            OP_LESSTHANOREQUAL => {
                let b = self.pop_num()?;
                let a = self.pop_num()?;
                self.push_bool(a <= b)?;
            }
            OP_GREATERTHANOREQUAL => {
                let b = self.pop_num()?;
                let a = self.pop_num()?;
                self.push_bool(a >= b)?;
            }
            OP_MIN => {
                let b = self.pop_num()?;
                let a = self.pop_num()?;
                self.push_num(a.min(b))?;
            }
            OP_MAX => {
                let b = self.pop_num()?;
                let a = self.pop_num()?;
                self.push_num(a.max(b))?;
            }
            OP_WITHIN => {
                let max = self.pop_num()?;
                let min = self.pop_num()?;
                let x = self.pop_num()?;
                self.push_bool(x >= min && x < max)?;
            }

            OP_CHECKLOCKTIMEVERIFY => {
                // BIP65: peek (not pop) a number of up to 5 bytes; negative
                // values and unsatisfied lock times fail.
                let top = self.peek(0)?.clone();
                let required = ScriptNum::decode(&top, 5)?.0;
                if required < 0 || !self.checker.check_lock_time(required) {
                    return Err(ScriptError::VerifyFailed);
                }
            }
            OP_RIPEMD160 => {
                let e = self.pop()?;
                self.push(ripemd160(&e).to_vec())?;
            }
            OP_SHA1 => {
                let e = self.pop()?;
                self.push(ebv_primitives::hash::sha1(&e).to_vec())?;
            }
            OP_SHA256 => {
                let e = self.pop()?;
                self.push(sha256(&e).to_vec())?;
            }
            OP_HASH160 => {
                let e = self.pop()?;
                self.push(hash160(&e).as_bytes().to_vec())?;
            }
            OP_HASH256 => {
                let e = self.pop()?;
                self.push(sha256d(&e).as_bytes().to_vec())?;
            }
            OP_CHECKSIG | OP_CHECKSIGVERIFY => {
                let pubkey = self.pop()?;
                let sig = self.pop()?;
                let ok = self.checker.check_sig(&sig, &pubkey);
                if op == OP_CHECKSIGVERIFY {
                    if !ok {
                        return Err(ScriptError::VerifyFailed);
                    }
                } else {
                    self.push_bool(ok)?;
                }
            }
            OP_CHECKMULTISIG | OP_CHECKMULTISIGVERIFY => {
                self.check_multisig(op == OP_CHECKMULTISIGVERIFY)?;
            }

            other => return Err(ScriptError::BadOpcode(other)),
        }
        Ok(())
    }

    /// `m`-of-`n` bare multisig: pops n, the n keys, m, the m signatures and
    /// the historical extra dummy element. Signatures must match keys in
    /// order.
    fn check_multisig(&mut self, verify: bool) -> Result<(), ScriptError> {
        let n = self.pop_num()?;
        if !(0..=20).contains(&n) {
            return Err(ScriptError::BadMultisigCount);
        }
        let mut keys = Vec::with_capacity(n as usize);
        for _ in 0..n {
            keys.push(self.pop()?);
        }
        let m = self.pop_num()?;
        if m < 0 || m > n {
            return Err(ScriptError::BadMultisigCount);
        }
        let mut sigs = Vec::with_capacity(m as usize);
        for _ in 0..m {
            sigs.push(self.pop()?);
        }
        // Bitcoin's off-by-one: one extra element is consumed.
        self.pop()?;

        // Each signature must verify against some key, scanning keys in
        // order without reuse.
        let mut key_iter = keys.iter();
        let mut ok = true;
        'sigs: for sig in &sigs {
            for key in key_iter.by_ref() {
                if self.checker.check_sig(sig, key) {
                    continue 'sigs;
                }
            }
            ok = false;
            break;
        }

        if verify {
            if !ok {
                return Err(ScriptError::VerifyFailed);
            }
        } else {
            self.push_bool(ok)?;
        }
        Ok(())
    }
}

/// Validate a spend: run the unlocking script, then the locking script on
/// the same stack, and require a truthy final top element. This is the SV
/// step of input checking.
pub fn verify_spend(
    unlocking: &Script,
    locking: &Script,
    checker: &dyn SignatureChecker,
) -> Result<(), ScriptError> {
    let mut engine = Engine::new(checker);
    engine.execute(unlocking)?;
    engine.execute(locking)?;
    match engine.stack.last() {
        Some(top) if ScriptNum::is_truthy(top) => Ok(()),
        _ => Err(ScriptError::EvalFalse),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::Builder;
    use crate::{AcceptAllChecker, RejectAllChecker};

    fn run(script: Script) -> Result<Vec<Vec<u8>>, ScriptError> {
        let mut e = Engine::new(&RejectAllChecker);
        e.execute(&script)?;
        Ok(e.stack().to_vec())
    }

    fn expect_top_num(script: Script, v: i64) {
        let stack = run(script).unwrap();
        assert_eq!(
            ScriptNum::decode(stack.last().unwrap(), 5).unwrap(),
            ScriptNum(v)
        );
    }

    #[test]
    fn arithmetic() {
        expect_top_num(
            Builder::new()
                .push_int(2)
                .push_int(3)
                .push_op(OP_ADD)
                .into_script(),
            5,
        );
        expect_top_num(
            Builder::new()
                .push_int(2)
                .push_int(3)
                .push_op(OP_SUB)
                .into_script(),
            -1,
        );
        expect_top_num(Builder::new().push_int(7).push_op(OP_1ADD).into_script(), 8);
        expect_top_num(
            Builder::new().push_int(7).push_op(OP_NEGATE).into_script(),
            -7,
        );
        expect_top_num(Builder::new().push_int(-7).push_op(OP_ABS).into_script(), 7);
        expect_top_num(
            Builder::new()
                .push_int(3)
                .push_int(9)
                .push_op(OP_MIN)
                .into_script(),
            3,
        );
        expect_top_num(
            Builder::new()
                .push_int(3)
                .push_int(9)
                .push_op(OP_MAX)
                .into_script(),
            9,
        );
    }

    #[test]
    fn comparisons() {
        for (a, b, op, want) in [
            (1i64, 2i64, OP_LESSTHAN, true),
            (2, 1, OP_LESSTHAN, false),
            (2, 1, OP_GREATERTHAN, true),
            (2, 2, OP_LESSTHANOREQUAL, true),
            (2, 2, OP_NUMEQUAL, true),
            (2, 3, OP_NUMNOTEQUAL, true),
        ] {
            let s = Builder::new()
                .push_int(a)
                .push_int(b)
                .push_op(op)
                .into_script();
            let stack = run(s).unwrap();
            assert_eq!(ScriptNum::is_truthy(stack.last().unwrap()), want);
        }
        // WITHIN: x in [min, max)
        let s = Builder::new()
            .push_int(5)
            .push_int(1)
            .push_int(10)
            .push_op(OP_WITHIN)
            .into_script();
        assert!(ScriptNum::is_truthy(run(s).unwrap().last().unwrap()));
    }

    #[test]
    fn stack_manipulation() {
        // DUP
        let s = Builder::new().push_int(9).push_op(OP_DUP).into_script();
        assert_eq!(run(s).unwrap().len(), 2);
        // SWAP then SUB: 3 - 10... stack [10, 3] -> swap -> [3, 10] -> sub = -7
        let s = Builder::new()
            .push_int(10)
            .push_int(3)
            .push_op(OP_SWAP)
            .push_op(OP_SUB)
            .into_script();
        expect_top_num(s, -7);
        // DEPTH
        let s = Builder::new()
            .push_int(1)
            .push_int(1)
            .push_op(OP_DEPTH)
            .into_script();
        expect_top_num(s, 2);
        // ROT: [a b c] -> [b c a]
        let s = Builder::new()
            .push_int(1)
            .push_int(2)
            .push_int(3)
            .push_op(OP_ROT)
            .into_script();
        expect_top_num(s, 1);
        // PICK copies depth-n element.
        let s = Builder::new()
            .push_int(7)
            .push_int(8)
            .push_int(1)
            .push_op(OP_PICK)
            .into_script();
        expect_top_num(s, 7);
    }

    #[test]
    fn alt_stack() {
        let s = Builder::new()
            .push_int(5)
            .push_op(OP_TOALTSTACK)
            .push_int(1)
            .push_op(OP_FROMALTSTACK)
            .into_script();
        expect_top_num(s, 5);
        let s = Builder::new().push_op(OP_FROMALTSTACK).into_script();
        assert_eq!(run(s), Err(ScriptError::AltStackUnderflow));
    }

    #[test]
    fn conditionals() {
        // IF taken.
        let s = Builder::new()
            .push_int(1)
            .push_op(OP_IF)
            .push_int(10)
            .push_op(OP_ELSE)
            .push_int(20)
            .push_op(OP_ENDIF)
            .into_script();
        expect_top_num(s, 10);
        // IF not taken.
        let s = Builder::new()
            .push_int(0)
            .push_op(OP_IF)
            .push_int(10)
            .push_op(OP_ELSE)
            .push_int(20)
            .push_op(OP_ENDIF)
            .into_script();
        expect_top_num(s, 20);
        // NOTIF.
        let s = Builder::new()
            .push_int(0)
            .push_op(OP_NOTIF)
            .push_int(30)
            .push_op(OP_ENDIF)
            .into_script();
        expect_top_num(s, 30);
    }

    #[test]
    fn nested_conditionals() {
        let s = Builder::new()
            .push_int(1)
            .push_op(OP_IF)
            .push_int(0)
            .push_op(OP_IF)
            .push_int(1)
            .push_op(OP_ELSE)
            .push_int(2)
            .push_op(OP_ENDIF)
            .push_op(OP_ENDIF)
            .into_script();
        expect_top_num(s, 2);
    }

    #[test]
    fn unbalanced_conditionals_rejected() {
        let s = Builder::new().push_int(1).push_op(OP_IF).into_script();
        assert_eq!(run(s), Err(ScriptError::UnbalancedConditional));
        let s = Builder::new().push_op(OP_ENDIF).into_script();
        assert_eq!(run(s), Err(ScriptError::UnbalancedConditional));
        let s = Builder::new().push_op(OP_ELSE).into_script();
        assert_eq!(run(s), Err(ScriptError::UnbalancedConditional));
    }

    #[test]
    fn dead_branch_skips_errors() {
        // An OP_RETURN inside a dead branch must not fire.
        let s = Builder::new()
            .push_int(0)
            .push_op(OP_IF)
            .push_op(OP_RETURN)
            .push_op(OP_ENDIF)
            .push_int(1)
            .into_script();
        expect_top_num(s, 1);
    }

    #[test]
    fn op_return_fails() {
        let s = Builder::new().push_op(OP_RETURN).into_script();
        assert_eq!(run(s), Err(ScriptError::OpReturn));
    }

    #[test]
    fn hashing_opcodes() {
        let s = Builder::new()
            .push_data(b"x")
            .push_op(OP_SHA256)
            .into_script();
        assert_eq!(run(s).unwrap().last().unwrap(), &sha256(b"x").to_vec());
        let s = Builder::new()
            .push_data(b"x")
            .push_op(OP_HASH160)
            .into_script();
        assert_eq!(
            run(s).unwrap().last().unwrap(),
            &hash160(b"x").as_bytes().to_vec()
        );
        let s = Builder::new()
            .push_data(b"x")
            .push_op(OP_HASH256)
            .into_script();
        assert_eq!(
            run(s).unwrap().last().unwrap(),
            &sha256d(b"x").as_bytes().to_vec()
        );
        let s = Builder::new()
            .push_data(b"x")
            .push_op(OP_RIPEMD160)
            .into_script();
        assert_eq!(run(s).unwrap().last().unwrap(), &ripemd160(b"x").to_vec());
        let s = Builder::new()
            .push_data(b"x")
            .push_op(OP_SHA1)
            .into_script();
        assert_eq!(
            run(s).unwrap().last().unwrap(),
            &ebv_primitives::hash::sha1(b"x").to_vec()
        );
    }

    #[test]
    fn equal_and_verify() {
        let s = Builder::new()
            .push_data(b"a")
            .push_data(b"a")
            .push_op(OP_EQUAL)
            .into_script();
        assert!(ScriptNum::is_truthy(run(s).unwrap().last().unwrap()));
        let s = Builder::new()
            .push_data(b"a")
            .push_data(b"b")
            .push_op(OP_EQUALVERIFY)
            .into_script();
        assert_eq!(run(s), Err(ScriptError::VerifyFailed));
    }

    #[test]
    fn checksig_uses_checker() {
        let s = Builder::new()
            .push_data(b"sig")
            .push_data(b"key")
            .push_op(OP_CHECKSIG)
            .into_script();
        let mut e = Engine::new(&AcceptAllChecker);
        e.execute(&s).unwrap();
        assert!(ScriptNum::is_truthy(e.stack().last().unwrap()));

        let mut e = Engine::new(&RejectAllChecker);
        e.execute(&s).unwrap();
        assert!(!ScriptNum::is_truthy(e.stack().last().unwrap()));
    }

    #[test]
    fn verify_spend_end_to_end() {
        // unlocking pushes 2 and 3; locking adds and compares to 5.
        let unlocking = Builder::new().push_int(2).push_int(3).into_script();
        let locking = Builder::new()
            .push_op(OP_ADD)
            .push_int(5)
            .push_op(OP_NUMEQUAL)
            .into_script();
        assert!(verify_spend(&unlocking, &locking, &RejectAllChecker).is_ok());

        let bad_unlocking = Builder::new().push_int(2).push_int(4).into_script();
        assert_eq!(
            verify_spend(&bad_unlocking, &locking, &RejectAllChecker),
            Err(ScriptError::EvalFalse)
        );
    }

    #[test]
    fn empty_final_stack_is_invalid() {
        let empty = Script::new();
        assert_eq!(
            verify_spend(&empty, &empty, &RejectAllChecker),
            Err(ScriptError::EvalFalse)
        );
    }

    #[test]
    fn resource_limits() {
        // Script too large.
        let s = Script::from_bytes(vec![OP_NOP; 10_001]);
        assert_eq!(run(s), Err(ScriptError::ScriptTooLarge));
        // Too many ops.
        let s = Script::from_bytes(vec![OP_NOP; 202]);
        assert_eq!(run(s), Err(ScriptError::TooManyOps));
        // Element too large.
        let s = Builder::new().push_data(&vec![0u8; 521]).into_script();
        assert_eq!(run(s), Err(ScriptError::ElementTooLarge));
    }

    #[test]
    fn stack_overflow_enforced() {
        let limits = ExecLimits {
            max_stack: 10,
            ..ExecLimits::default()
        };
        let mut b = Builder::new();
        for _ in 0..11 {
            b = b.push_int(1);
        }
        let mut e = Engine::with_limits(&RejectAllChecker, limits);
        assert_eq!(e.execute(&b.into_script()), Err(ScriptError::StackOverflow));
    }

    #[test]
    fn underflow_detected() {
        assert_eq!(
            run(Builder::new().push_op(OP_ADD).into_script()),
            Err(ScriptError::StackUnderflow)
        );
        assert_eq!(
            run(Builder::new().push_int(1).push_op(OP_ADD).into_script()),
            Err(ScriptError::StackUnderflow)
        );
    }

    #[test]
    fn bad_opcode_rejected() {
        let s = Script::from_bytes(vec![0xfe]);
        assert_eq!(run(s), Err(ScriptError::BadOpcode(0xfe)));
    }

    #[test]
    fn checklocktimeverify() {
        /// Checker with transaction lock time `self.0`.
        struct LockTimeChecker(u32);
        impl SignatureChecker for LockTimeChecker {
            fn check_sig(&self, _: &[u8], _: &[u8]) -> bool {
                false
            }
            fn check_lock_time(&self, required: i64) -> bool {
                required <= self.0 as i64
            }
        }
        let script = Builder::new()
            .push_int(500)
            .push_op(OP_CHECKLOCKTIMEVERIFY)
            .into_script();
        // Satisfied lock time: value stays on the stack (peek semantics).
        let mut e = Engine::new(&LockTimeChecker(600));
        e.execute(&script).expect("lock time satisfied");
        assert_eq!(e.stack().len(), 1);
        // Unsatisfied.
        let mut e = Engine::new(&LockTimeChecker(400));
        assert_eq!(e.execute(&script), Err(ScriptError::VerifyFailed));
        // Negative requirement always fails.
        let neg = Builder::new()
            .push_int(-1)
            .push_op(OP_CHECKLOCKTIMEVERIFY)
            .into_script();
        let mut e = Engine::new(&LockTimeChecker(400));
        assert_eq!(e.execute(&neg), Err(ScriptError::VerifyFailed));
        // Default checker (no context) fails closed.
        let mut e = Engine::new(&RejectAllChecker);
        assert_eq!(e.execute(&script), Err(ScriptError::VerifyFailed));
        // Empty stack underflows.
        let bare = Builder::new().push_op(OP_CHECKLOCKTIMEVERIFY).into_script();
        let mut e = Engine::new(&LockTimeChecker(400));
        assert_eq!(e.execute(&bare), Err(ScriptError::StackUnderflow));
    }

    #[test]
    fn multisig_happy_path_with_accept_checker() {
        // 2-of-3 with AcceptAll: dummy, sig1, sig2, 2, k1, k2, k3, 3.
        let s = Builder::new()
            .push_int(0) // dummy
            .push_data(b"sig1")
            .push_data(b"sig2")
            .push_int(2)
            .push_data(b"k1")
            .push_data(b"k2")
            .push_data(b"k3")
            .push_int(3)
            .push_op(OP_CHECKMULTISIG)
            .into_script();
        let mut e = Engine::new(&AcceptAllChecker);
        e.execute(&s).unwrap();
        assert!(ScriptNum::is_truthy(e.stack().last().unwrap()));
    }

    #[test]
    fn multisig_bad_counts() {
        // m > n
        let s = Builder::new()
            .push_int(0)
            .push_data(b"s")
            .push_data(b"s")
            .push_int(2)
            .push_data(b"k")
            .push_int(1)
            .push_op(OP_CHECKMULTISIG)
            .into_script();
        let mut e = Engine::new(&AcceptAllChecker);
        assert_eq!(e.execute(&s), Err(ScriptError::BadMultisigCount));
    }
}
