//! Stack-based script engine — the Script Validation (SV) substrate.
//!
//! The EBV paper leaves SV untouched ("the SV process in EBV works in the
//! same way as the traditional ones", §IV-D), so this engine is shared by
//! the Bitcoin-baseline validator and the EBV validator. It implements the
//! Bitcoin-style execution model:
//!
//! * an unlocking script (*Us*, provided by the input) runs first, then the
//!   locking script (*Ls*, from the spent output) runs on the same stack;
//! * the spend is valid iff execution succeeds and leaves a truthy top
//!   element;
//! * `OP_CHECKSIG`-family opcodes call back into a [`SignatureChecker`]
//!   supplied by the chain layer, which binds signatures to the transaction
//!   digest (sighash).
//!
//! The opcode set covers everything the workload generator emits (P2PKH,
//! P2PK, bare multisig) plus the standard stack/arithmetic/flow opcodes so
//! that scripts in tests can exercise realistic control flow.

mod interpreter;
mod num;
pub mod opcodes;
mod script;
pub mod standard;

pub use interpreter::{verify_spend, Engine, ExecLimits, ScriptError, SignatureChecker};
pub use num::ScriptNum;
pub use script::{Builder, Script};

/// A [`SignatureChecker`] that rejects every signature; useful for tests of
/// pure-stack scripts.
pub struct RejectAllChecker;

impl SignatureChecker for RejectAllChecker {
    fn check_sig(&self, _sig: &[u8], _pubkey: &[u8]) -> bool {
        false
    }
}

/// A [`SignatureChecker`] that accepts every non-empty signature; used by
/// benchmarks that want to isolate non-crypto script cost.
pub struct AcceptAllChecker;

impl SignatureChecker for AcceptAllChecker {
    fn check_sig(&self, sig: &[u8], _pubkey: &[u8]) -> bool {
        !sig.is_empty()
    }
}
