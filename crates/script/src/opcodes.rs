//! Opcode constants.
//!
//! Byte values match Bitcoin's assignments so that scripts are recognizable
//! in hex dumps and the standard-template byte patterns (e.g. the 25-byte
//! P2PKH locking script) have the familiar sizes, which matters for the
//! memory-requirement experiments.

/// Push an empty array (false).
pub const OP_0: u8 = 0x00;
/// Direct pushes: byte values 0x01..=0x4b push that many following bytes.
pub const OP_PUSHBYTES_MAX: u8 = 0x4b;
/// Next byte is the push length.
pub const OP_PUSHDATA1: u8 = 0x4c;
/// Next two bytes (LE) are the push length.
pub const OP_PUSHDATA2: u8 = 0x4d;
/// Next four bytes (LE) are the push length.
pub const OP_PUSHDATA4: u8 = 0x4e;
/// Push the number -1.
pub const OP_1NEGATE: u8 = 0x4f;
/// Push the number 1. OP_2..OP_16 follow contiguously.
pub const OP_1: u8 = 0x51;
pub const OP_2: u8 = 0x52;
pub const OP_3: u8 = 0x53;
pub const OP_16: u8 = 0x60;

pub const OP_NOP: u8 = 0x61;
pub const OP_IF: u8 = 0x63;
pub const OP_NOTIF: u8 = 0x64;
pub const OP_ELSE: u8 = 0x67;
pub const OP_ENDIF: u8 = 0x68;
pub const OP_VERIFY: u8 = 0x69;
pub const OP_RETURN: u8 = 0x6a;

pub const OP_TOALTSTACK: u8 = 0x6b;
pub const OP_FROMALTSTACK: u8 = 0x6c;
pub const OP_2DROP: u8 = 0x6d;
pub const OP_2DUP: u8 = 0x6e;
pub const OP_3DUP: u8 = 0x6f;
pub const OP_IFDUP: u8 = 0x73;
pub const OP_DEPTH: u8 = 0x74;
pub const OP_DROP: u8 = 0x75;
pub const OP_DUP: u8 = 0x76;
pub const OP_NIP: u8 = 0x77;
pub const OP_OVER: u8 = 0x78;
pub const OP_PICK: u8 = 0x79;
pub const OP_ROLL: u8 = 0x7a;
pub const OP_ROT: u8 = 0x7b;
pub const OP_SWAP: u8 = 0x7c;
pub const OP_TUCK: u8 = 0x7d;

pub const OP_SIZE: u8 = 0x82;
pub const OP_EQUAL: u8 = 0x87;
pub const OP_EQUALVERIFY: u8 = 0x88;

pub const OP_1ADD: u8 = 0x8b;
pub const OP_1SUB: u8 = 0x8c;
pub const OP_NEGATE: u8 = 0x8f;
pub const OP_ABS: u8 = 0x90;
pub const OP_NOT: u8 = 0x91;
pub const OP_0NOTEQUAL: u8 = 0x92;
pub const OP_ADD: u8 = 0x93;
pub const OP_SUB: u8 = 0x94;
pub const OP_BOOLAND: u8 = 0x9a;
pub const OP_BOOLOR: u8 = 0x9b;
pub const OP_NUMEQUAL: u8 = 0x9c;
pub const OP_NUMEQUALVERIFY: u8 = 0x9d;
pub const OP_NUMNOTEQUAL: u8 = 0x9e;
pub const OP_LESSTHAN: u8 = 0x9f;
pub const OP_GREATERTHAN: u8 = 0xa0;
pub const OP_LESSTHANOREQUAL: u8 = 0xa1;
pub const OP_GREATERTHANOREQUAL: u8 = 0xa2;
pub const OP_MIN: u8 = 0xa3;
pub const OP_MAX: u8 = 0xa4;
pub const OP_WITHIN: u8 = 0xa5;

/// BIP65: fail unless the spending transaction's lock time is at least
/// the top stack item.
pub const OP_CHECKLOCKTIMEVERIFY: u8 = 0xb1;

pub const OP_RIPEMD160: u8 = 0xa6;
pub const OP_SHA1: u8 = 0xa7;
pub const OP_SHA256: u8 = 0xa8;
pub const OP_HASH160: u8 = 0xa9;
pub const OP_HASH256: u8 = 0xaa;
pub const OP_CHECKSIG: u8 = 0xac;
pub const OP_CHECKSIGVERIFY: u8 = 0xad;
pub const OP_CHECKMULTISIG: u8 = 0xae;
pub const OP_CHECKMULTISIGVERIFY: u8 = 0xaf;

/// True if the byte is one of the small-integer push opcodes OP_1..OP_16.
pub fn is_small_int(op: u8) -> bool {
    (OP_1..=OP_16).contains(&op)
}

/// The value pushed by a small-integer opcode.
pub fn small_int_value(op: u8) -> i64 {
    debug_assert!(is_small_int(op));
    (op - OP_1) as i64 + 1
}

/// The opcode pushing small integer `v` (1..=16).
pub fn small_int_op(v: u8) -> u8 {
    debug_assert!((1..=16).contains(&v));
    OP_1 + v - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_int_round_trip() {
        for v in 1..=16u8 {
            let op = small_int_op(v);
            assert!(is_small_int(op));
            assert_eq!(small_int_value(op), v as i64);
        }
        assert!(!is_small_int(OP_0));
        assert!(!is_small_int(OP_NOP));
    }
}
