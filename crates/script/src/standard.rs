//! Standard script templates: pay-to-pubkey-hash (P2PKH), pay-to-pubkey
//! (P2PK) and bare m-of-n multisig — the output types the workload
//! generator emits (P2PKH dominates, mirroring the real UTXO set).

use crate::opcodes::*;
use crate::script::{Builder, Script};
use ebv_primitives::hash::Hash160;

/// `OP_DUP OP_HASH160 <pubkey-hash> OP_EQUALVERIFY OP_CHECKSIG` — the
/// classic 25-byte P2PKH locking script.
pub fn p2pkh_lock(pubkey_hash: &Hash160) -> Script {
    Builder::new()
        .push_op(OP_DUP)
        .push_op(OP_HASH160)
        .push_data(pubkey_hash.as_bytes())
        .push_op(OP_EQUALVERIFY)
        .push_op(OP_CHECKSIG)
        .into_script()
}

/// `<sig> <pubkey>` — the P2PKH unlocking script.
pub fn p2pkh_unlock(sig: &[u8], pubkey: &[u8]) -> Script {
    Builder::new()
        .push_data(sig)
        .push_data(pubkey)
        .into_script()
}

/// `<pubkey> OP_CHECKSIG` — pay-to-pubkey locking script.
pub fn p2pk_lock(pubkey: &[u8]) -> Script {
    Builder::new()
        .push_data(pubkey)
        .push_op(OP_CHECKSIG)
        .into_script()
}

/// `<sig>` — pay-to-pubkey unlocking script.
pub fn p2pk_unlock(sig: &[u8]) -> Script {
    Builder::new().push_data(sig).into_script()
}

/// `m <key1> ... <keyn> n OP_CHECKMULTISIG` — bare multisig locking script.
///
/// # Panics
/// If `m` is 0, `m > keys.len()`, or more than 16 keys are given (the
/// small-int encoding limit for bare multisig).
pub fn multisig_lock(m: usize, keys: &[&[u8]]) -> Script {
    assert!(
        m >= 1 && m <= keys.len() && keys.len() <= 16,
        "invalid m-of-n"
    );
    let mut b = Builder::new().push_int(m as i64);
    for key in keys {
        b = b.push_data(key);
    }
    b.push_int(keys.len() as i64)
        .push_op(OP_CHECKMULTISIG)
        .into_script()
}

/// `OP_0 <sig1> ... <sigm>` — bare multisig unlocking script (the leading
/// empty push absorbs `OP_CHECKMULTISIG`'s historical extra pop).
pub fn multisig_unlock(sigs: &[&[u8]]) -> Script {
    let mut b = Builder::new().push_op(OP_0);
    for sig in sigs {
        b = b.push_data(sig);
    }
    b.into_script()
}

/// Classify a locking script, if it matches a standard template.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScriptClass {
    P2pkh,
    P2pk,
    Multisig,
    NonStandard,
}

/// Best-effort classification by byte pattern.
pub fn classify(lock: &Script) -> ScriptClass {
    let b = lock.as_bytes();
    if b.len() == 25
        && b[0] == OP_DUP
        && b[1] == OP_HASH160
        && b[2] == 20
        && b[23] == OP_EQUALVERIFY
        && b[24] == OP_CHECKSIG
    {
        return ScriptClass::P2pkh;
    }
    if b.len() == 35 && b[0] == 33 && b[34] == OP_CHECKSIG {
        return ScriptClass::P2pk;
    }
    if b.len() >= 3
        && is_small_int(b[0])
        && is_small_int(b[b.len() - 2])
        && b[b.len() - 1] == OP_CHECKMULTISIG
    {
        return ScriptClass::Multisig;
    }
    ScriptClass::NonStandard
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpreter::{verify_spend, ScriptError, SignatureChecker};
    use ebv_primitives::ec::PrivateKey;
    use ebv_primitives::hash::sha256;

    /// Checker bound to a fixed digest, the way the chain layer binds to a
    /// sighash.
    struct DigestChecker([u8; 32]);

    impl SignatureChecker for DigestChecker {
        fn check_sig(&self, sig: &[u8], pubkey: &[u8]) -> bool {
            let Ok(pk) = ebv_primitives::ec::PublicKey::from_compressed(pubkey) else {
                return false;
            };
            // Compact signature plus one sighash-type byte.
            if sig.len() != 65 {
                return false;
            }
            pk.verify_compact(&self.0, &sig[..64]).unwrap_or(false)
        }
    }

    fn sig_with_type(sk: &PrivateKey, digest: &[u8; 32]) -> Vec<u8> {
        let mut v = sk.sign(digest).to_compact().to_vec();
        v.push(0x01); // SIGHASH_ALL
        v
    }

    #[test]
    fn p2pkh_lock_is_25_bytes() {
        let sk = PrivateKey::from_seed(1);
        let lock = p2pkh_lock(&sk.public_key().address_hash());
        assert_eq!(lock.len(), 25);
        assert_eq!(classify(&lock), ScriptClass::P2pkh);
    }

    #[test]
    fn p2pkh_spend_verifies() {
        let sk = PrivateKey::from_seed(7);
        let pk = sk.public_key();
        let digest = sha256(b"tx digest");
        let lock = p2pkh_lock(&pk.address_hash());
        let unlock = p2pkh_unlock(&sig_with_type(&sk, &digest), &pk.to_compressed());
        assert!(verify_spend(&unlock, &lock, &DigestChecker(digest)).is_ok());
    }

    #[test]
    fn p2pkh_wrong_key_fails() {
        let sk = PrivateKey::from_seed(7);
        let wrong = PrivateKey::from_seed(8);
        let digest = sha256(b"tx digest");
        let lock = p2pkh_lock(&sk.public_key().address_hash());
        // Signature by the wrong key, presenting the wrong pubkey: fails the
        // EQUALVERIFY hash check.
        let unlock = p2pkh_unlock(
            &sig_with_type(&wrong, &digest),
            &wrong.public_key().to_compressed(),
        );
        assert_eq!(
            verify_spend(&unlock, &lock, &DigestChecker(digest)),
            Err(ScriptError::VerifyFailed)
        );
    }

    #[test]
    fn p2pkh_wrong_signature_fails() {
        let sk = PrivateKey::from_seed(7);
        let pk = sk.public_key();
        let digest = sha256(b"tx digest");
        let other_digest = sha256(b"different tx");
        let lock = p2pkh_lock(&pk.address_hash());
        // Right key, signature over the wrong digest: CHECKSIG pushes false.
        let unlock = p2pkh_unlock(&sig_with_type(&sk, &other_digest), &pk.to_compressed());
        assert_eq!(
            verify_spend(&unlock, &lock, &DigestChecker(digest)),
            Err(ScriptError::EvalFalse)
        );
    }

    #[test]
    fn p2pk_spend_verifies() {
        let sk = PrivateKey::from_seed(3);
        let digest = sha256(b"p2pk");
        let lock = p2pk_lock(&sk.public_key().to_compressed());
        assert_eq!(classify(&lock), ScriptClass::P2pk);
        let unlock = p2pk_unlock(&sig_with_type(&sk, &digest));
        assert!(verify_spend(&unlock, &lock, &DigestChecker(digest)).is_ok());
    }

    #[test]
    fn multisig_2_of_3_verifies() {
        let sks: Vec<_> = (10..13).map(PrivateKey::from_seed).collect();
        let pks: Vec<_> = sks.iter().map(|k| k.public_key().to_compressed()).collect();
        let digest = sha256(b"multisig");
        let key_refs: Vec<&[u8]> = pks.iter().map(|k| k.as_slice()).collect();
        let lock = multisig_lock(2, &key_refs);
        assert_eq!(classify(&lock), ScriptClass::Multisig);

        let s0 = sig_with_type(&sks[0], &digest);
        let s2 = sig_with_type(&sks[2], &digest);
        let unlock = multisig_unlock(&[&s0, &s2]);
        assert!(verify_spend(&unlock, &lock, &DigestChecker(digest)).is_ok());
    }

    #[test]
    fn multisig_out_of_order_sigs_fail() {
        let sks: Vec<_> = (10..13).map(PrivateKey::from_seed).collect();
        let pks: Vec<_> = sks.iter().map(|k| k.public_key().to_compressed()).collect();
        let digest = sha256(b"multisig");
        let key_refs: Vec<&[u8]> = pks.iter().map(|k| k.as_slice()).collect();
        let lock = multisig_lock(2, &key_refs);

        let s0 = sig_with_type(&sks[0], &digest);
        let s2 = sig_with_type(&sks[2], &digest);
        // Reversed order: key scan cannot match sig for key 2 first then 0.
        let unlock = multisig_unlock(&[&s2, &s0]);
        assert_eq!(
            verify_spend(&unlock, &lock, &DigestChecker(digest)),
            Err(ScriptError::EvalFalse)
        );
    }

    #[test]
    fn multisig_insufficient_sigs_fail() {
        let sks: Vec<_> = (10..13).map(PrivateKey::from_seed).collect();
        let pks: Vec<_> = sks.iter().map(|k| k.public_key().to_compressed()).collect();
        let digest = sha256(b"multisig");
        let key_refs: Vec<&[u8]> = pks.iter().map(|k| k.as_slice()).collect();
        let lock = multisig_lock(2, &key_refs);
        let s0 = sig_with_type(&sks[0], &digest);
        // Only one signature provided for 2-of-3: the engine pops m=2
        // signature slots, consuming the dummy as a (bad) signature.
        let unlock = multisig_unlock(&[&s0]);
        assert!(verify_spend(&unlock, &lock, &DigestChecker(digest)).is_err());
    }

    #[test]
    fn classify_non_standard() {
        assert_eq!(classify(&Script::new()), ScriptClass::NonStandard);
        assert_eq!(
            classify(&Builder::new().push_int(1).into_script()),
            ScriptClass::NonStandard
        );
    }
}
