//! Script numbers — Bitcoin's `CScriptNum`.
//!
//! Stack elements interpreted as numbers are little-endian
//! sign-and-magnitude, at most 4 bytes on input (results may grow to 5),
//! and must be minimally encoded.

use crate::interpreter::ScriptError;

/// A script integer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct ScriptNum(pub i64);

impl ScriptNum {
    /// Decode a stack element as a number. `max_size` is 4 for operands.
    pub fn decode(bytes: &[u8], max_size: usize) -> Result<ScriptNum, ScriptError> {
        if bytes.len() > max_size {
            return Err(ScriptError::NumberOverflow);
        }
        if bytes.is_empty() {
            return Ok(ScriptNum(0));
        }
        // Minimal encoding: the most significant byte must not be a bare
        // sign byte unless required by the preceding byte's high bit.
        let last = bytes[bytes.len() - 1];
        if last & 0x7f == 0 && (bytes.len() == 1 || bytes[bytes.len() - 2] & 0x80 == 0) {
            return Err(ScriptError::NonMinimalNumber);
        }
        let mut value: i64 = 0;
        for (i, &b) in bytes.iter().enumerate() {
            if i == bytes.len() - 1 {
                value |= ((b & 0x7f) as i64) << (8 * i);
            } else {
                value |= (b as i64) << (8 * i);
            }
        }
        if last & 0x80 != 0 {
            value = -value;
        }
        Ok(ScriptNum(value))
    }

    /// Encode as a minimal stack element.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = self.0;
        if v == 0 {
            return Vec::new();
        }
        let negative = v < 0;
        if negative {
            v = -v;
        }
        let mut out = Vec::with_capacity(5);
        while v > 0 {
            out.push((v & 0xff) as u8);
            v >>= 8;
        }
        // If the top byte's high bit is set, append a sign byte; otherwise
        // fold the sign into the top byte.
        let top = *out.last().expect("nonzero value has bytes");
        if top & 0x80 != 0 {
            out.push(if negative { 0x80 } else { 0x00 });
        } else if negative {
            *out.last_mut().expect("nonempty") |= 0x80;
        }
        out
    }

    /// Truthiness of a raw stack element: false iff all bytes are zero
    /// (allowing a negative-zero sign byte).
    pub fn is_truthy(bytes: &[u8]) -> bool {
        for (i, &b) in bytes.iter().enumerate() {
            if b != 0 {
                // Negative zero (sign byte only) is false.
                return !(i == bytes.len() - 1 && b == 0x80);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: i64) {
        let enc = ScriptNum(v).encode();
        assert_eq!(ScriptNum::decode(&enc, 5).unwrap(), ScriptNum(v), "v = {v}");
    }

    #[test]
    fn encode_zero_is_empty() {
        assert!(ScriptNum(0).encode().is_empty());
        assert_eq!(ScriptNum::decode(&[], 4).unwrap(), ScriptNum(0));
    }

    #[test]
    fn round_trips() {
        for v in [
            1i64,
            -1,
            16,
            -16,
            127,
            -127,
            128,
            -128,
            255,
            -255,
            256,
            0x7fff,
            -0x7fff,
            0x8000,
            0x7fff_ffff,
            -0x7fff_ffff,
            0x8000_0000,
            -0x8000_0000,
        ] {
            round_trip(v);
        }
    }

    #[test]
    fn known_encodings() {
        assert_eq!(ScriptNum(1).encode(), vec![0x01]);
        assert_eq!(ScriptNum(-1).encode(), vec![0x81]);
        assert_eq!(ScriptNum(127).encode(), vec![0x7f]);
        assert_eq!(ScriptNum(128).encode(), vec![0x80, 0x00]);
        assert_eq!(ScriptNum(-128).encode(), vec![0x80, 0x80]);
        assert_eq!(ScriptNum(256).encode(), vec![0x00, 0x01]);
    }

    #[test]
    fn rejects_oversized() {
        assert_eq!(
            ScriptNum::decode(&[1, 2, 3, 4, 5], 4),
            Err(ScriptError::NumberOverflow)
        );
    }

    #[test]
    fn rejects_non_minimal() {
        // 1 encoded as [0x01, 0x00].
        assert_eq!(
            ScriptNum::decode(&[0x01, 0x00], 4),
            Err(ScriptError::NonMinimalNumber)
        );
        // 0 encoded as [0x00].
        assert_eq!(
            ScriptNum::decode(&[0x00], 4),
            Err(ScriptError::NonMinimalNumber)
        );
        // but [0xff, 0x00] is minimal (high bit of 0xff needs the pad).
        assert_eq!(ScriptNum::decode(&[0xff, 0x00], 4).unwrap(), ScriptNum(255));
    }

    #[test]
    fn truthiness() {
        assert!(!ScriptNum::is_truthy(&[]));
        assert!(!ScriptNum::is_truthy(&[0x00]));
        assert!(!ScriptNum::is_truthy(&[0x00, 0x00]));
        assert!(!ScriptNum::is_truthy(&[0x00, 0x80])); // negative zero
        assert!(ScriptNum::is_truthy(&[0x01]));
        assert!(ScriptNum::is_truthy(&[0x80, 0x00])); // 128
        assert!(ScriptNum::is_truthy(&[0x00, 0x01]));
    }
}
