//! The [`Script`] byte container, instruction iterator and [`Builder`].

use crate::interpreter::ScriptError;
use crate::opcodes::*;
use ebv_primitives::encode::{Decodable, DecodeError, Encodable, Reader};

/// A serialized script. Scripts are opaque byte strings until executed;
/// construction goes through [`Builder`] or the standard templates in
/// [`crate::standard`].
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Script(pub Vec<u8>);

/// One decoded instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Instruction<'a> {
    /// Push the given bytes (covers OP_0, direct pushes and OP_PUSHDATAn).
    Push(&'a [u8]),
    /// A non-push opcode byte.
    Op(u8),
}

impl Script {
    pub fn new() -> Script {
        Script(Vec::new())
    }

    pub fn from_bytes(bytes: Vec<u8>) -> Script {
        Script(bytes)
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate instructions, validating push lengths.
    pub fn instructions(&self) -> Instructions<'_> {
        Instructions {
            bytes: &self.0,
            pos: 0,
        }
    }
}

impl std::fmt::Debug for Script {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Script({})", ebv_primitives::hex::encode(&self.0))
    }
}

impl Encodable for Script {
    fn encode(&self, out: &mut Vec<u8>) {
        ebv_primitives::encode::write_var_bytes(out, &self.0);
    }
    fn encoded_len(&self) -> usize {
        ebv_primitives::encode::varint_len(self.0.len() as u64) + self.0.len()
    }
}

impl Decodable for Script {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Script(r.read_var_bytes()?))
    }
}

/// Instruction iterator over a script's bytes.
pub struct Instructions<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for Instructions<'a> {
    type Item = Result<Instruction<'a>, ScriptError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let op = self.bytes[self.pos];
        self.pos += 1;
        let take = |this: &mut Self, n: usize| -> Result<&'a [u8], ScriptError> {
            if this.bytes.len() - this.pos < n {
                return Err(ScriptError::TruncatedPush);
            }
            let out = &this.bytes[this.pos..this.pos + n];
            this.pos += n;
            Ok(out)
        };
        let item = match op {
            OP_0 => Ok(Instruction::Push(&[])),
            1..=OP_PUSHBYTES_MAX => take(self, op as usize).map(Instruction::Push),
            OP_PUSHDATA1 => take(self, 1)
                .map(|l| l[0] as usize)
                .and_then(|n| take(self, n))
                .map(Instruction::Push),
            OP_PUSHDATA2 => take(self, 2)
                .map(|l| u16::from_le_bytes([l[0], l[1]]) as usize)
                .and_then(|n| take(self, n))
                .map(Instruction::Push),
            OP_PUSHDATA4 => take(self, 4)
                .map(|l| u32::from_le_bytes([l[0], l[1], l[2], l[3]]) as usize)
                .and_then(|n| take(self, n))
                .map(Instruction::Push),
            other => Ok(Instruction::Op(other)),
        };
        Some(item)
    }
}

/// Incremental script builder.
#[derive(Default)]
pub struct Builder(Vec<u8>);

impl Builder {
    pub fn new() -> Builder {
        Builder(Vec::new())
    }

    /// Append a raw opcode byte.
    pub fn push_op(mut self, op: u8) -> Builder {
        self.0.push(op);
        self
    }

    /// Append a data push using the shortest form.
    pub fn push_data(mut self, data: &[u8]) -> Builder {
        match data.len() {
            0 => self.0.push(OP_0),
            n @ 1..=0x4b => {
                self.0.push(n as u8);
                self.0.extend_from_slice(data);
            }
            n @ 0x4c..=0xff => {
                self.0.push(OP_PUSHDATA1);
                self.0.push(n as u8);
                self.0.extend_from_slice(data);
            }
            n @ 0x100..=0xffff => {
                self.0.push(OP_PUSHDATA2);
                self.0.extend_from_slice(&(n as u16).to_le_bytes());
                self.0.extend_from_slice(data);
            }
            n => {
                self.0.push(OP_PUSHDATA4);
                self.0.extend_from_slice(&(n as u32).to_le_bytes());
                self.0.extend_from_slice(data);
            }
        }
        self
    }

    /// Append an integer push (using small-int opcodes where possible).
    pub fn push_int(self, v: i64) -> Builder {
        match v {
            0 => self.push_op(OP_0),
            -1 => self.push_op(OP_1NEGATE),
            1..=16 => self.push_op(small_int_op(v as u8)),
            _ => {
                let enc = crate::num::ScriptNum(v).encode();
                self.push_data(&enc)
            }
        }
    }

    pub fn into_script(self) -> Script {
        Script(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_shortest_push_forms() {
        let s = Builder::new().push_data(&[0xaa; 3]).into_script();
        assert_eq!(s.0[0], 3);
        let s = Builder::new().push_data(&[0xaa; 0x4c]).into_script();
        assert_eq!(s.0[0], OP_PUSHDATA1);
        let s = Builder::new().push_data(&[0xaa; 0x100]).into_script();
        assert_eq!(s.0[0], OP_PUSHDATA2);
    }

    #[test]
    fn instruction_iteration() {
        let s = Builder::new()
            .push_int(5)
            .push_data(b"hello")
            .push_op(OP_ADD)
            .into_script();
        let ins: Vec<_> = s.instructions().collect::<Result<_, _>>().unwrap();
        assert_eq!(
            ins,
            vec![
                Instruction::Op(small_int_op(5)),
                Instruction::Push(b"hello"),
                Instruction::Op(OP_ADD),
            ]
        );
    }

    #[test]
    fn truncated_push_detected() {
        // Direct push of 5 bytes but only 2 present.
        let s = Script::from_bytes(vec![0x05, 0xaa, 0xbb]);
        let r: Result<Vec<_>, _> = s.instructions().collect();
        assert_eq!(r.unwrap_err(), ScriptError::TruncatedPush);

        // PUSHDATA1 missing its length byte.
        let s = Script::from_bytes(vec![OP_PUSHDATA1]);
        let r: Result<Vec<_>, _> = s.instructions().collect();
        assert_eq!(r.unwrap_err(), ScriptError::TruncatedPush);
    }

    #[test]
    fn push_int_forms() {
        assert_eq!(Builder::new().push_int(0).into_script().0, vec![OP_0]);
        assert_eq!(
            Builder::new().push_int(-1).into_script().0,
            vec![OP_1NEGATE]
        );
        assert_eq!(Builder::new().push_int(16).into_script().0, vec![OP_16]);
        assert_eq!(Builder::new().push_int(17).into_script().0, vec![0x01, 17]);
        assert_eq!(
            Builder::new().push_int(-5).into_script().0,
            vec![0x01, 0x85]
        );
    }

    #[test]
    fn encode_round_trip() {
        let s = Builder::new()
            .push_data(b"abc")
            .push_op(OP_DUP)
            .into_script();
        let bytes = s.to_bytes();
        assert_eq!(<Script as Decodable>::from_bytes(&bytes).unwrap(), s);
    }
}
