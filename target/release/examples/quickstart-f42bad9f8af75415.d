/root/repo/target/release/examples/quickstart-f42bad9f8af75415.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f42bad9f8af75415: examples/quickstart.rs

examples/quickstart.rs:
