/root/repo/target/release/deps/pipeline-95dfe0fa654788cf.d: tests/pipeline.rs

/root/repo/target/release/deps/pipeline-95dfe0fa654788cf: tests/pipeline.rs

tests/pipeline.rs:
