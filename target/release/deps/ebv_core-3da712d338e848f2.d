/root/repo/target/release/deps/ebv_core-3da712d338e848f2.d: crates/core/src/lib.rs crates/core/src/baseline_node.rs crates/core/src/bitvec.rs crates/core/src/ebv_node.rs crates/core/src/ibd.rs crates/core/src/intermediary.rs crates/core/src/mempool.rs crates/core/src/metrics.rs crates/core/src/pack.rs crates/core/src/proofs.rs crates/core/src/sighash.rs crates/core/src/sync.rs crates/core/src/tidy.rs

/root/repo/target/release/deps/ebv_core-3da712d338e848f2: crates/core/src/lib.rs crates/core/src/baseline_node.rs crates/core/src/bitvec.rs crates/core/src/ebv_node.rs crates/core/src/ibd.rs crates/core/src/intermediary.rs crates/core/src/mempool.rs crates/core/src/metrics.rs crates/core/src/pack.rs crates/core/src/proofs.rs crates/core/src/sighash.rs crates/core/src/sync.rs crates/core/src/tidy.rs

crates/core/src/lib.rs:
crates/core/src/baseline_node.rs:
crates/core/src/bitvec.rs:
crates/core/src/ebv_node.rs:
crates/core/src/ibd.rs:
crates/core/src/intermediary.rs:
crates/core/src/mempool.rs:
crates/core/src/metrics.rs:
crates/core/src/pack.rs:
crates/core/src/proofs.rs:
crates/core/src/sighash.rs:
crates/core/src/sync.rs:
crates/core/src/tidy.rs:
