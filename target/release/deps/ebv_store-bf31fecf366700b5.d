/root/repo/target/release/deps/ebv_store-bf31fecf366700b5.d: crates/store/src/lib.rs crates/store/src/cache.rs crates/store/src/disk.rs crates/store/src/kv.rs crates/store/src/stats.rs crates/store/src/utxo.rs

/root/repo/target/release/deps/libebv_store-bf31fecf366700b5.rlib: crates/store/src/lib.rs crates/store/src/cache.rs crates/store/src/disk.rs crates/store/src/kv.rs crates/store/src/stats.rs crates/store/src/utxo.rs

/root/repo/target/release/deps/libebv_store-bf31fecf366700b5.rmeta: crates/store/src/lib.rs crates/store/src/cache.rs crates/store/src/disk.rs crates/store/src/kv.rs crates/store/src/stats.rs crates/store/src/utxo.rs

crates/store/src/lib.rs:
crates/store/src/cache.rs:
crates/store/src/disk.rs:
crates/store/src/kv.rs:
crates/store/src/stats.rs:
crates/store/src/utxo.rs:
