/root/repo/target/release/deps/security-d48be5b5b5d2d4db.d: tests/security.rs

/root/repo/target/release/deps/security-d48be5b5b5d2d4db: tests/security.rs

tests/security.rs:
