/root/repo/target/release/deps/fig17-c017efad70dd551d.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-c017efad70dd551d: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
