/root/repo/target/release/deps/ebv_script-040ca393a5fc3aaa.d: crates/script/src/lib.rs crates/script/src/interpreter.rs crates/script/src/num.rs crates/script/src/opcodes.rs crates/script/src/script.rs crates/script/src/standard.rs

/root/repo/target/release/deps/libebv_script-040ca393a5fc3aaa.rlib: crates/script/src/lib.rs crates/script/src/interpreter.rs crates/script/src/num.rs crates/script/src/opcodes.rs crates/script/src/script.rs crates/script/src/standard.rs

/root/repo/target/release/deps/libebv_script-040ca393a5fc3aaa.rmeta: crates/script/src/lib.rs crates/script/src/interpreter.rs crates/script/src/num.rs crates/script/src/opcodes.rs crates/script/src/script.rs crates/script/src/standard.rs

crates/script/src/lib.rs:
crates/script/src/interpreter.rs:
crates/script/src/num.rs:
crates/script/src/opcodes.rs:
crates/script/src/script.rs:
crates/script/src/standard.rs:
