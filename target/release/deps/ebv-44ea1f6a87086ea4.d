/root/repo/target/release/deps/ebv-44ea1f6a87086ea4.d: src/lib.rs

/root/repo/target/release/deps/libebv-44ea1f6a87086ea4.rlib: src/lib.rs

/root/repo/target/release/deps/libebv-44ea1f6a87086ea4.rmeta: src/lib.rs

src/lib.rs:
