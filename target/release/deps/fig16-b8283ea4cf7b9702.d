/root/repo/target/release/deps/fig16-b8283ea4cf7b9702.d: crates/bench/src/bin/fig16.rs

/root/repo/target/release/deps/fig16-b8283ea4cf7b9702: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
