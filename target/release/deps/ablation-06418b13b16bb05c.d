/root/repo/target/release/deps/ablation-06418b13b16bb05c.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-06418b13b16bb05c: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
