/root/repo/target/release/deps/ebv_bench-072b626fac994662.d: crates/bench/src/lib.rs crates/bench/src/apply.rs crates/bench/src/args.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libebv_bench-072b626fac994662.rlib: crates/bench/src/lib.rs crates/bench/src/apply.rs crates/bench/src/args.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libebv_bench-072b626fac994662.rmeta: crates/bench/src/lib.rs crates/bench/src/apply.rs crates/bench/src/args.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/apply.rs:
crates/bench/src/args.rs:
crates/bench/src/scenario.rs:
crates/bench/src/table.rs:
