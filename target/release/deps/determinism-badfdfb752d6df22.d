/root/repo/target/release/deps/determinism-badfdfb752d6df22.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-badfdfb752d6df22: tests/determinism.rs

tests/determinism.rs:
