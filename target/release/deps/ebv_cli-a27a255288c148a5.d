/root/repo/target/release/deps/ebv_cli-a27a255288c148a5.d: src/bin/ebv-cli.rs

/root/repo/target/release/deps/ebv_cli-a27a255288c148a5: src/bin/ebv-cli.rs

src/bin/ebv-cli.rs:
