/root/repo/target/release/deps/rand-f8e40f3f44c4bc33.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-f8e40f3f44c4bc33.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-f8e40f3f44c4bc33.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
