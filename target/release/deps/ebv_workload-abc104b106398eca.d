/root/repo/target/release/deps/ebv_workload-abc104b106398eca.d: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/keys.rs crates/workload/src/params.rs crates/workload/src/stats.rs

/root/repo/target/release/deps/libebv_workload-abc104b106398eca.rlib: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/keys.rs crates/workload/src/params.rs crates/workload/src/stats.rs

/root/repo/target/release/deps/libebv_workload-abc104b106398eca.rmeta: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/keys.rs crates/workload/src/params.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/generator.rs:
crates/workload/src/keys.rs:
crates/workload/src/params.rs:
crates/workload/src/stats.rs:
