/root/repo/target/release/deps/rayon-7eb6c491dc5417c3.d: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-7eb6c491dc5417c3.rlib: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-7eb6c491dc5417c3.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
