/root/repo/target/release/deps/ebv_chain-23b3e760ff9367ee.d: crates/chain/src/lib.rs crates/chain/src/block.rs crates/chain/src/builder.rs crates/chain/src/chainstore.rs crates/chain/src/merkle.rs crates/chain/src/transaction.rs

/root/repo/target/release/deps/libebv_chain-23b3e760ff9367ee.rlib: crates/chain/src/lib.rs crates/chain/src/block.rs crates/chain/src/builder.rs crates/chain/src/chainstore.rs crates/chain/src/merkle.rs crates/chain/src/transaction.rs

/root/repo/target/release/deps/libebv_chain-23b3e760ff9367ee.rmeta: crates/chain/src/lib.rs crates/chain/src/block.rs crates/chain/src/builder.rs crates/chain/src/chainstore.rs crates/chain/src/merkle.rs crates/chain/src/transaction.rs

crates/chain/src/lib.rs:
crates/chain/src/block.rs:
crates/chain/src/builder.rs:
crates/chain/src/chainstore.rs:
crates/chain/src/merkle.rs:
crates/chain/src/transaction.rs:
