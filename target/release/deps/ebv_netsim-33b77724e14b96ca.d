/root/repo/target/release/deps/ebv_netsim-33b77724e14b96ca.d: crates/netsim/src/lib.rs crates/netsim/src/experiment.rs crates/netsim/src/sim.rs crates/netsim/src/topology.rs crates/netsim/src/validation.rs

/root/repo/target/release/deps/libebv_netsim-33b77724e14b96ca.rlib: crates/netsim/src/lib.rs crates/netsim/src/experiment.rs crates/netsim/src/sim.rs crates/netsim/src/topology.rs crates/netsim/src/validation.rs

/root/repo/target/release/deps/libebv_netsim-33b77724e14b96ca.rmeta: crates/netsim/src/lib.rs crates/netsim/src/experiment.rs crates/netsim/src/sim.rs crates/netsim/src/topology.rs crates/netsim/src/validation.rs

crates/netsim/src/lib.rs:
crates/netsim/src/experiment.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/validation.rs:
