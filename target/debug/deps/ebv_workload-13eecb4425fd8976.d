/root/repo/target/debug/deps/ebv_workload-13eecb4425fd8976.d: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/keys.rs crates/workload/src/params.rs crates/workload/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libebv_workload-13eecb4425fd8976.rmeta: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/keys.rs crates/workload/src/params.rs crates/workload/src/stats.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/generator.rs:
crates/workload/src/keys.rs:
crates/workload/src/params.rs:
crates/workload/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
