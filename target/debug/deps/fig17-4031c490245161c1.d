/root/repo/target/debug/deps/fig17-4031c490245161c1.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/fig17-4031c490245161c1: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
