/root/repo/target/debug/deps/fig01-af418da90a4df8c2.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/fig01-af418da90a4df8c2: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
