/root/repo/target/debug/deps/ebv-2c48f61bc9f6e76a.d: src/lib.rs

/root/repo/target/debug/deps/libebv-2c48f61bc9f6e76a.rlib: src/lib.rs

/root/repo/target/debug/deps/libebv-2c48f61bc9f6e76a.rmeta: src/lib.rs

src/lib.rs:
