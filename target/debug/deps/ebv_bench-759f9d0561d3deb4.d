/root/repo/target/debug/deps/ebv_bench-759f9d0561d3deb4.d: crates/bench/src/lib.rs crates/bench/src/apply.rs crates/bench/src/args.rs crates/bench/src/scenario.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libebv_bench-759f9d0561d3deb4.rmeta: crates/bench/src/lib.rs crates/bench/src/apply.rs crates/bench/src/args.rs crates/bench/src/scenario.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/apply.rs:
crates/bench/src/args.rs:
crates/bench/src/scenario.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
