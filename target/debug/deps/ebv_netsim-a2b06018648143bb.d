/root/repo/target/debug/deps/ebv_netsim-a2b06018648143bb.d: crates/netsim/src/lib.rs crates/netsim/src/experiment.rs crates/netsim/src/sim.rs crates/netsim/src/topology.rs crates/netsim/src/validation.rs Cargo.toml

/root/repo/target/debug/deps/libebv_netsim-a2b06018648143bb.rmeta: crates/netsim/src/lib.rs crates/netsim/src/experiment.rs crates/netsim/src/sim.rs crates/netsim/src/topology.rs crates/netsim/src/validation.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/experiment.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
