/root/repo/target/debug/deps/ebv-94243d4a9bf4a6dd.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libebv-94243d4a9bf4a6dd.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
