/root/repo/target/debug/deps/rayon-664c647edd3306d3.d: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/rayon-664c647edd3306d3: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
