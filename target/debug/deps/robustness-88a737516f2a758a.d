/root/repo/target/debug/deps/robustness-88a737516f2a758a.d: crates/script/tests/robustness.rs

/root/repo/target/debug/deps/robustness-88a737516f2a758a: crates/script/tests/robustness.rs

crates/script/tests/robustness.rs:
