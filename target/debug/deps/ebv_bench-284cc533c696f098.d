/root/repo/target/debug/deps/ebv_bench-284cc533c696f098.d: crates/bench/src/lib.rs crates/bench/src/apply.rs crates/bench/src/args.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libebv_bench-284cc533c696f098.rlib: crates/bench/src/lib.rs crates/bench/src/apply.rs crates/bench/src/args.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libebv_bench-284cc533c696f098.rmeta: crates/bench/src/lib.rs crates/bench/src/apply.rs crates/bench/src/args.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/apply.rs:
crates/bench/src/args.rs:
crates/bench/src/scenario.rs:
crates/bench/src/table.rs:
