/root/repo/target/debug/deps/reorg-4e0018ec18cb9301.d: tests/reorg.rs

/root/repo/target/debug/deps/reorg-4e0018ec18cb9301: tests/reorg.rs

tests/reorg.rs:
