/root/repo/target/debug/deps/ebv_netsim-030a3f939e4b760c.d: crates/netsim/src/lib.rs crates/netsim/src/experiment.rs crates/netsim/src/sim.rs crates/netsim/src/topology.rs crates/netsim/src/validation.rs

/root/repo/target/debug/deps/ebv_netsim-030a3f939e4b760c: crates/netsim/src/lib.rs crates/netsim/src/experiment.rs crates/netsim/src/sim.rs crates/netsim/src/topology.rs crates/netsim/src/validation.rs

crates/netsim/src/lib.rs:
crates/netsim/src/experiment.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/validation.rs:
