/root/repo/target/debug/deps/fig05-871d9bb1862b6fc1.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/fig05-871d9bb1862b6fc1: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
