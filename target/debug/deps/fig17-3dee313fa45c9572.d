/root/repo/target/debug/deps/fig17-3dee313fa45c9572.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/fig17-3dee313fa45c9572: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
