/root/repo/target/debug/deps/ebv_core-046e7def2c1d463a.d: crates/core/src/lib.rs crates/core/src/baseline_node.rs crates/core/src/bitvec.rs crates/core/src/ebv_node.rs crates/core/src/ibd.rs crates/core/src/intermediary.rs crates/core/src/mempool.rs crates/core/src/metrics.rs crates/core/src/pack.rs crates/core/src/proofs.rs crates/core/src/sighash.rs crates/core/src/sync.rs crates/core/src/tidy.rs Cargo.toml

/root/repo/target/debug/deps/libebv_core-046e7def2c1d463a.rmeta: crates/core/src/lib.rs crates/core/src/baseline_node.rs crates/core/src/bitvec.rs crates/core/src/ebv_node.rs crates/core/src/ibd.rs crates/core/src/intermediary.rs crates/core/src/mempool.rs crates/core/src/metrics.rs crates/core/src/pack.rs crates/core/src/proofs.rs crates/core/src/sighash.rs crates/core/src/sync.rs crates/core/src/tidy.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baseline_node.rs:
crates/core/src/bitvec.rs:
crates/core/src/ebv_node.rs:
crates/core/src/ibd.rs:
crates/core/src/intermediary.rs:
crates/core/src/mempool.rs:
crates/core/src/metrics.rs:
crates/core/src/pack.rs:
crates/core/src/proofs.rs:
crates/core/src/sighash.rs:
crates/core/src/sync.rs:
crates/core/src/tidy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
