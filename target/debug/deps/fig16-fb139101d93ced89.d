/root/repo/target/debug/deps/fig16-fb139101d93ced89.d: crates/bench/src/bin/fig16.rs

/root/repo/target/debug/deps/fig16-fb139101d93ced89: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
