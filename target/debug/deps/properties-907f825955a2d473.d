/root/repo/target/debug/deps/properties-907f825955a2d473.d: tests/properties.rs

/root/repo/target/debug/deps/properties-907f825955a2d473: tests/properties.rs

tests/properties.rs:
