/root/repo/target/debug/deps/security-288892df3678d0ce.d: tests/security.rs

/root/repo/target/debug/deps/security-288892df3678d0ce: tests/security.rs

tests/security.rs:
