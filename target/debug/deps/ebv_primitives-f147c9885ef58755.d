/root/repo/target/debug/deps/ebv_primitives-f147c9885ef58755.d: crates/primitives/src/lib.rs crates/primitives/src/base58.rs crates/primitives/src/ec/mod.rs crates/primitives/src/ec/ecdsa.rs crates/primitives/src/ec/field.rs crates/primitives/src/ec/keys.rs crates/primitives/src/ec/point.rs crates/primitives/src/ec/rfc6979.rs crates/primitives/src/ec/scalar.rs crates/primitives/src/encode.rs crates/primitives/src/hash/mod.rs crates/primitives/src/hash/hmac.rs crates/primitives/src/hash/ripemd160.rs crates/primitives/src/hash/sha1.rs crates/primitives/src/hash/sha256.rs crates/primitives/src/hex.rs crates/primitives/src/u256.rs

/root/repo/target/debug/deps/ebv_primitives-f147c9885ef58755: crates/primitives/src/lib.rs crates/primitives/src/base58.rs crates/primitives/src/ec/mod.rs crates/primitives/src/ec/ecdsa.rs crates/primitives/src/ec/field.rs crates/primitives/src/ec/keys.rs crates/primitives/src/ec/point.rs crates/primitives/src/ec/rfc6979.rs crates/primitives/src/ec/scalar.rs crates/primitives/src/encode.rs crates/primitives/src/hash/mod.rs crates/primitives/src/hash/hmac.rs crates/primitives/src/hash/ripemd160.rs crates/primitives/src/hash/sha1.rs crates/primitives/src/hash/sha256.rs crates/primitives/src/hex.rs crates/primitives/src/u256.rs

crates/primitives/src/lib.rs:
crates/primitives/src/base58.rs:
crates/primitives/src/ec/mod.rs:
crates/primitives/src/ec/ecdsa.rs:
crates/primitives/src/ec/field.rs:
crates/primitives/src/ec/keys.rs:
crates/primitives/src/ec/point.rs:
crates/primitives/src/ec/rfc6979.rs:
crates/primitives/src/ec/scalar.rs:
crates/primitives/src/encode.rs:
crates/primitives/src/hash/mod.rs:
crates/primitives/src/hash/hmac.rs:
crates/primitives/src/hash/ripemd160.rs:
crates/primitives/src/hash/sha1.rs:
crates/primitives/src/hash/sha256.rs:
crates/primitives/src/hex.rs:
crates/primitives/src/u256.rs:
