/root/repo/target/debug/deps/store_recovery-127d1bfdc356cd03.d: tests/store_recovery.rs

/root/repo/target/debug/deps/store_recovery-127d1bfdc356cd03: tests/store_recovery.rs

tests/store_recovery.rs:
