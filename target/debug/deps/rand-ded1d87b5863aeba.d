/root/repo/target/debug/deps/rand-ded1d87b5863aeba.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ded1d87b5863aeba.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ded1d87b5863aeba.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
