/root/repo/target/debug/deps/ebv_chain-0cf66990fa86cd11.d: crates/chain/src/lib.rs crates/chain/src/block.rs crates/chain/src/builder.rs crates/chain/src/chainstore.rs crates/chain/src/merkle.rs crates/chain/src/transaction.rs

/root/repo/target/debug/deps/ebv_chain-0cf66990fa86cd11: crates/chain/src/lib.rs crates/chain/src/block.rs crates/chain/src/builder.rs crates/chain/src/chainstore.rs crates/chain/src/merkle.rs crates/chain/src/transaction.rs

crates/chain/src/lib.rs:
crates/chain/src/block.rs:
crates/chain/src/builder.rs:
crates/chain/src/chainstore.rs:
crates/chain/src/merkle.rs:
crates/chain/src/transaction.rs:
