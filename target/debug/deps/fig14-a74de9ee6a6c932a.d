/root/repo/target/debug/deps/fig14-a74de9ee6a6c932a.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-a74de9ee6a6c932a: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
