/root/repo/target/debug/deps/ebv_cli-83c7da33f606f890.d: src/bin/ebv-cli.rs Cargo.toml

/root/repo/target/debug/deps/libebv_cli-83c7da33f606f890.rmeta: src/bin/ebv-cli.rs Cargo.toml

src/bin/ebv-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
