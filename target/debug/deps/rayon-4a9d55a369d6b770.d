/root/repo/target/debug/deps/rayon-4a9d55a369d6b770.d: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-4a9d55a369d6b770.rlib: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-4a9d55a369d6b770.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
