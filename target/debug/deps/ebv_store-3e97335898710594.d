/root/repo/target/debug/deps/ebv_store-3e97335898710594.d: crates/store/src/lib.rs crates/store/src/cache.rs crates/store/src/disk.rs crates/store/src/kv.rs crates/store/src/stats.rs crates/store/src/utxo.rs Cargo.toml

/root/repo/target/debug/deps/libebv_store-3e97335898710594.rmeta: crates/store/src/lib.rs crates/store/src/cache.rs crates/store/src/disk.rs crates/store/src/kv.rs crates/store/src/stats.rs crates/store/src/utxo.rs Cargo.toml

crates/store/src/lib.rs:
crates/store/src/cache.rs:
crates/store/src/disk.rs:
crates/store/src/kv.rs:
crates/store/src/stats.rs:
crates/store/src/utxo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
