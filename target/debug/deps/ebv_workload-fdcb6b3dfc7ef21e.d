/root/repo/target/debug/deps/ebv_workload-fdcb6b3dfc7ef21e.d: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/keys.rs crates/workload/src/params.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/ebv_workload-fdcb6b3dfc7ef21e: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/keys.rs crates/workload/src/params.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/generator.rs:
crates/workload/src/keys.rs:
crates/workload/src/params.rs:
crates/workload/src/stats.rs:
