/root/repo/target/debug/deps/ebv_primitives-b1d1310885a6d67a.d: crates/primitives/src/lib.rs crates/primitives/src/base58.rs crates/primitives/src/ec/mod.rs crates/primitives/src/ec/ecdsa.rs crates/primitives/src/ec/field.rs crates/primitives/src/ec/keys.rs crates/primitives/src/ec/point.rs crates/primitives/src/ec/rfc6979.rs crates/primitives/src/ec/scalar.rs crates/primitives/src/encode.rs crates/primitives/src/hash/mod.rs crates/primitives/src/hash/hmac.rs crates/primitives/src/hash/ripemd160.rs crates/primitives/src/hash/sha1.rs crates/primitives/src/hash/sha256.rs crates/primitives/src/hex.rs crates/primitives/src/u256.rs Cargo.toml

/root/repo/target/debug/deps/libebv_primitives-b1d1310885a6d67a.rmeta: crates/primitives/src/lib.rs crates/primitives/src/base58.rs crates/primitives/src/ec/mod.rs crates/primitives/src/ec/ecdsa.rs crates/primitives/src/ec/field.rs crates/primitives/src/ec/keys.rs crates/primitives/src/ec/point.rs crates/primitives/src/ec/rfc6979.rs crates/primitives/src/ec/scalar.rs crates/primitives/src/encode.rs crates/primitives/src/hash/mod.rs crates/primitives/src/hash/hmac.rs crates/primitives/src/hash/ripemd160.rs crates/primitives/src/hash/sha1.rs crates/primitives/src/hash/sha256.rs crates/primitives/src/hex.rs crates/primitives/src/u256.rs Cargo.toml

crates/primitives/src/lib.rs:
crates/primitives/src/base58.rs:
crates/primitives/src/ec/mod.rs:
crates/primitives/src/ec/ecdsa.rs:
crates/primitives/src/ec/field.rs:
crates/primitives/src/ec/keys.rs:
crates/primitives/src/ec/point.rs:
crates/primitives/src/ec/rfc6979.rs:
crates/primitives/src/ec/scalar.rs:
crates/primitives/src/encode.rs:
crates/primitives/src/hash/mod.rs:
crates/primitives/src/hash/hmac.rs:
crates/primitives/src/hash/ripemd160.rs:
crates/primitives/src/hash/sha1.rs:
crates/primitives/src/hash/sha256.rs:
crates/primitives/src/hex.rs:
crates/primitives/src/u256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
