/root/repo/target/debug/deps/end_to_end-abafcf6237e87a4c.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-abafcf6237e87a4c: tests/end_to_end.rs

tests/end_to_end.rs:
