/root/repo/target/debug/deps/rand-a3125c3c6be5e890.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-a3125c3c6be5e890: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
