/root/repo/target/debug/deps/fig01-6c9b8d3def8ba0c8.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/fig01-6c9b8d3def8ba0c8: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
