/root/repo/target/debug/deps/overhead-820d5ed18eeb5cbd.d: crates/bench/src/bin/overhead.rs

/root/repo/target/debug/deps/overhead-820d5ed18eeb5cbd: crates/bench/src/bin/overhead.rs

crates/bench/src/bin/overhead.rs:
