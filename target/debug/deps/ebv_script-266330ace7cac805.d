/root/repo/target/debug/deps/ebv_script-266330ace7cac805.d: crates/script/src/lib.rs crates/script/src/interpreter.rs crates/script/src/num.rs crates/script/src/opcodes.rs crates/script/src/script.rs crates/script/src/standard.rs

/root/repo/target/debug/deps/libebv_script-266330ace7cac805.rlib: crates/script/src/lib.rs crates/script/src/interpreter.rs crates/script/src/num.rs crates/script/src/opcodes.rs crates/script/src/script.rs crates/script/src/standard.rs

/root/repo/target/debug/deps/libebv_script-266330ace7cac805.rmeta: crates/script/src/lib.rs crates/script/src/interpreter.rs crates/script/src/num.rs crates/script/src/opcodes.rs crates/script/src/script.rs crates/script/src/standard.rs

crates/script/src/lib.rs:
crates/script/src/interpreter.rs:
crates/script/src/num.rs:
crates/script/src/opcodes.rs:
crates/script/src/script.rs:
crates/script/src/standard.rs:
