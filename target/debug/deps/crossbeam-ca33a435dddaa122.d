/root/repo/target/debug/deps/crossbeam-ca33a435dddaa122.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-ca33a435dddaa122.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-ca33a435dddaa122.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
