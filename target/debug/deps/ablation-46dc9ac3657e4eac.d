/root/repo/target/debug/deps/ablation-46dc9ac3657e4eac.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-46dc9ac3657e4eac: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
