/root/repo/target/debug/deps/table_all-97ba12c322c9b0d8.d: crates/bench/src/bin/table_all.rs

/root/repo/target/debug/deps/table_all-97ba12c322c9b0d8: crates/bench/src/bin/table_all.rs

crates/bench/src/bin/table_all.rs:
