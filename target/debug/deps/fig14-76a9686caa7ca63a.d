/root/repo/target/debug/deps/fig14-76a9686caa7ca63a.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-76a9686caa7ca63a: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
