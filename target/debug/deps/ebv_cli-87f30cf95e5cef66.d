/root/repo/target/debug/deps/ebv_cli-87f30cf95e5cef66.d: src/bin/ebv-cli.rs

/root/repo/target/debug/deps/ebv_cli-87f30cf95e5cef66: src/bin/ebv-cli.rs

src/bin/ebv-cli.rs:
