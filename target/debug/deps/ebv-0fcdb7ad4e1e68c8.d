/root/repo/target/debug/deps/ebv-0fcdb7ad4e1e68c8.d: src/lib.rs

/root/repo/target/debug/deps/ebv-0fcdb7ad4e1e68c8: src/lib.rs

src/lib.rs:
