/root/repo/target/debug/deps/ebv_store-b009cce920aad587.d: crates/store/src/lib.rs crates/store/src/cache.rs crates/store/src/disk.rs crates/store/src/kv.rs crates/store/src/stats.rs crates/store/src/utxo.rs

/root/repo/target/debug/deps/libebv_store-b009cce920aad587.rlib: crates/store/src/lib.rs crates/store/src/cache.rs crates/store/src/disk.rs crates/store/src/kv.rs crates/store/src/stats.rs crates/store/src/utxo.rs

/root/repo/target/debug/deps/libebv_store-b009cce920aad587.rmeta: crates/store/src/lib.rs crates/store/src/cache.rs crates/store/src/disk.rs crates/store/src/kv.rs crates/store/src/stats.rs crates/store/src/utxo.rs

crates/store/src/lib.rs:
crates/store/src/cache.rs:
crates/store/src/disk.rs:
crates/store/src/kv.rs:
crates/store/src/stats.rs:
crates/store/src/utxo.rs:
