/root/repo/target/debug/deps/overhead-fad226a23943af33.d: crates/bench/src/bin/overhead.rs Cargo.toml

/root/repo/target/debug/deps/liboverhead-fad226a23943af33.rmeta: crates/bench/src/bin/overhead.rs Cargo.toml

crates/bench/src/bin/overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
