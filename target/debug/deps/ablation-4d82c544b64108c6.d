/root/repo/target/debug/deps/ablation-4d82c544b64108c6.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-4d82c544b64108c6.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
