/root/repo/target/debug/deps/ebv_chain-8a5574614fb99625.d: crates/chain/src/lib.rs crates/chain/src/block.rs crates/chain/src/builder.rs crates/chain/src/chainstore.rs crates/chain/src/merkle.rs crates/chain/src/transaction.rs Cargo.toml

/root/repo/target/debug/deps/libebv_chain-8a5574614fb99625.rmeta: crates/chain/src/lib.rs crates/chain/src/block.rs crates/chain/src/builder.rs crates/chain/src/chainstore.rs crates/chain/src/merkle.rs crates/chain/src/transaction.rs Cargo.toml

crates/chain/src/lib.rs:
crates/chain/src/block.rs:
crates/chain/src/builder.rs:
crates/chain/src/chainstore.rs:
crates/chain/src/merkle.rs:
crates/chain/src/transaction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
