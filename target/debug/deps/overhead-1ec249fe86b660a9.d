/root/repo/target/debug/deps/overhead-1ec249fe86b660a9.d: crates/bench/src/bin/overhead.rs

/root/repo/target/debug/deps/overhead-1ec249fe86b660a9: crates/bench/src/bin/overhead.rs

crates/bench/src/bin/overhead.rs:
