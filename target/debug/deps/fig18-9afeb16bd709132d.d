/root/repo/target/debug/deps/fig18-9afeb16bd709132d.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/fig18-9afeb16bd709132d: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
