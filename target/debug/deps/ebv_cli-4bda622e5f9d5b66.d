/root/repo/target/debug/deps/ebv_cli-4bda622e5f9d5b66.d: src/bin/ebv-cli.rs

/root/repo/target/debug/deps/ebv_cli-4bda622e5f9d5b66: src/bin/ebv-cli.rs

src/bin/ebv-cli.rs:
