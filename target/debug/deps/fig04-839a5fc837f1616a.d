/root/repo/target/debug/deps/fig04-839a5fc837f1616a.d: crates/bench/src/bin/fig04.rs

/root/repo/target/debug/deps/fig04-839a5fc837f1616a: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
