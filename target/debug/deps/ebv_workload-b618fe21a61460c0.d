/root/repo/target/debug/deps/ebv_workload-b618fe21a61460c0.d: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/keys.rs crates/workload/src/params.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/libebv_workload-b618fe21a61460c0.rlib: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/keys.rs crates/workload/src/params.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/libebv_workload-b618fe21a61460c0.rmeta: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/keys.rs crates/workload/src/params.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/generator.rs:
crates/workload/src/keys.rs:
crates/workload/src/params.rs:
crates/workload/src/stats.rs:
