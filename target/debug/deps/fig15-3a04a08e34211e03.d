/root/repo/target/debug/deps/fig15-3a04a08e34211e03.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-3a04a08e34211e03: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
