/root/repo/target/debug/deps/ebv_script-b87531728d6c651e.d: crates/script/src/lib.rs crates/script/src/interpreter.rs crates/script/src/num.rs crates/script/src/opcodes.rs crates/script/src/script.rs crates/script/src/standard.rs

/root/repo/target/debug/deps/ebv_script-b87531728d6c651e: crates/script/src/lib.rs crates/script/src/interpreter.rs crates/script/src/num.rs crates/script/src/opcodes.rs crates/script/src/script.rs crates/script/src/standard.rs

crates/script/src/lib.rs:
crates/script/src/interpreter.rs:
crates/script/src/num.rs:
crates/script/src/opcodes.rs:
crates/script/src/script.rs:
crates/script/src/standard.rs:
