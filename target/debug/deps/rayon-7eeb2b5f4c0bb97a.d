/root/repo/target/debug/deps/rayon-7eeb2b5f4c0bb97a.d: shims/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-7eeb2b5f4c0bb97a.rmeta: shims/rayon/src/lib.rs Cargo.toml

shims/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
