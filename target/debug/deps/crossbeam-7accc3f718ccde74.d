/root/repo/target/debug/deps/crossbeam-7accc3f718ccde74.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-7accc3f718ccde74: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
