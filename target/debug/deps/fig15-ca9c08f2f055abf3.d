/root/repo/target/debug/deps/fig15-ca9c08f2f055abf3.d: crates/bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-ca9c08f2f055abf3: crates/bench/src/bin/fig15.rs

crates/bench/src/bin/fig15.rs:
