/root/repo/target/debug/deps/table_all-4e087f54ef9e3811.d: crates/bench/src/bin/table_all.rs

/root/repo/target/debug/deps/table_all-4e087f54ef9e3811: crates/bench/src/bin/table_all.rs

crates/bench/src/bin/table_all.rs:
