/root/repo/target/debug/deps/ebv_script-36bceacc79d5052a.d: crates/script/src/lib.rs crates/script/src/interpreter.rs crates/script/src/num.rs crates/script/src/opcodes.rs crates/script/src/script.rs crates/script/src/standard.rs Cargo.toml

/root/repo/target/debug/deps/libebv_script-36bceacc79d5052a.rmeta: crates/script/src/lib.rs crates/script/src/interpreter.rs crates/script/src/num.rs crates/script/src/opcodes.rs crates/script/src/script.rs crates/script/src/standard.rs Cargo.toml

crates/script/src/lib.rs:
crates/script/src/interpreter.rs:
crates/script/src/num.rs:
crates/script/src/opcodes.rs:
crates/script/src/script.rs:
crates/script/src/standard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
