/root/repo/target/debug/deps/ebv_core-b227b87c340ee2ce.d: crates/core/src/lib.rs crates/core/src/baseline_node.rs crates/core/src/bitvec.rs crates/core/src/ebv_node.rs crates/core/src/ibd.rs crates/core/src/intermediary.rs crates/core/src/mempool.rs crates/core/src/metrics.rs crates/core/src/pack.rs crates/core/src/proofs.rs crates/core/src/sighash.rs crates/core/src/sync.rs crates/core/src/tidy.rs

/root/repo/target/debug/deps/libebv_core-b227b87c340ee2ce.rlib: crates/core/src/lib.rs crates/core/src/baseline_node.rs crates/core/src/bitvec.rs crates/core/src/ebv_node.rs crates/core/src/ibd.rs crates/core/src/intermediary.rs crates/core/src/mempool.rs crates/core/src/metrics.rs crates/core/src/pack.rs crates/core/src/proofs.rs crates/core/src/sighash.rs crates/core/src/sync.rs crates/core/src/tidy.rs

/root/repo/target/debug/deps/libebv_core-b227b87c340ee2ce.rmeta: crates/core/src/lib.rs crates/core/src/baseline_node.rs crates/core/src/bitvec.rs crates/core/src/ebv_node.rs crates/core/src/ibd.rs crates/core/src/intermediary.rs crates/core/src/mempool.rs crates/core/src/metrics.rs crates/core/src/pack.rs crates/core/src/proofs.rs crates/core/src/sighash.rs crates/core/src/sync.rs crates/core/src/tidy.rs

crates/core/src/lib.rs:
crates/core/src/baseline_node.rs:
crates/core/src/bitvec.rs:
crates/core/src/ebv_node.rs:
crates/core/src/ibd.rs:
crates/core/src/intermediary.rs:
crates/core/src/mempool.rs:
crates/core/src/metrics.rs:
crates/core/src/pack.rs:
crates/core/src/proofs.rs:
crates/core/src/sighash.rs:
crates/core/src/sync.rs:
crates/core/src/tidy.rs:
