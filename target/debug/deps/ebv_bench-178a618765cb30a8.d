/root/repo/target/debug/deps/ebv_bench-178a618765cb30a8.d: crates/bench/src/lib.rs crates/bench/src/apply.rs crates/bench/src/args.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/ebv_bench-178a618765cb30a8: crates/bench/src/lib.rs crates/bench/src/apply.rs crates/bench/src/args.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/apply.rs:
crates/bench/src/args.rs:
crates/bench/src/scenario.rs:
crates/bench/src/table.rs:
