/root/repo/target/debug/deps/fig18-1b196912b0066d47.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/fig18-1b196912b0066d47: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
