/root/repo/target/debug/deps/table_all-7fcf4383f9f2b45f.d: crates/bench/src/bin/table_all.rs Cargo.toml

/root/repo/target/debug/deps/libtable_all-7fcf4383f9f2b45f.rmeta: crates/bench/src/bin/table_all.rs Cargo.toml

crates/bench/src/bin/table_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
