/root/repo/target/debug/deps/ebv_chain-c7d06fb6923c0f94.d: crates/chain/src/lib.rs crates/chain/src/block.rs crates/chain/src/builder.rs crates/chain/src/chainstore.rs crates/chain/src/merkle.rs crates/chain/src/transaction.rs

/root/repo/target/debug/deps/libebv_chain-c7d06fb6923c0f94.rlib: crates/chain/src/lib.rs crates/chain/src/block.rs crates/chain/src/builder.rs crates/chain/src/chainstore.rs crates/chain/src/merkle.rs crates/chain/src/transaction.rs

/root/repo/target/debug/deps/libebv_chain-c7d06fb6923c0f94.rmeta: crates/chain/src/lib.rs crates/chain/src/block.rs crates/chain/src/builder.rs crates/chain/src/chainstore.rs crates/chain/src/merkle.rs crates/chain/src/transaction.rs

crates/chain/src/lib.rs:
crates/chain/src/block.rs:
crates/chain/src/builder.rs:
crates/chain/src/chainstore.rs:
crates/chain/src/merkle.rs:
crates/chain/src/transaction.rs:
