/root/repo/target/debug/deps/fig04-b728228408e83cbd.d: crates/bench/src/bin/fig04.rs

/root/repo/target/debug/deps/fig04-b728228408e83cbd: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
