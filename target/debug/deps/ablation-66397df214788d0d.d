/root/repo/target/debug/deps/ablation-66397df214788d0d.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-66397df214788d0d: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
