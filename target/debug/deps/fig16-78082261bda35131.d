/root/repo/target/debug/deps/fig16-78082261bda35131.d: crates/bench/src/bin/fig16.rs

/root/repo/target/debug/deps/fig16-78082261bda35131: crates/bench/src/bin/fig16.rs

crates/bench/src/bin/fig16.rs:
