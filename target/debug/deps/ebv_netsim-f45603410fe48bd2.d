/root/repo/target/debug/deps/ebv_netsim-f45603410fe48bd2.d: crates/netsim/src/lib.rs crates/netsim/src/experiment.rs crates/netsim/src/sim.rs crates/netsim/src/topology.rs crates/netsim/src/validation.rs

/root/repo/target/debug/deps/libebv_netsim-f45603410fe48bd2.rlib: crates/netsim/src/lib.rs crates/netsim/src/experiment.rs crates/netsim/src/sim.rs crates/netsim/src/topology.rs crates/netsim/src/validation.rs

/root/repo/target/debug/deps/libebv_netsim-f45603410fe48bd2.rmeta: crates/netsim/src/lib.rs crates/netsim/src/experiment.rs crates/netsim/src/sim.rs crates/netsim/src/topology.rs crates/netsim/src/validation.rs

crates/netsim/src/lib.rs:
crates/netsim/src/experiment.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/validation.rs:
