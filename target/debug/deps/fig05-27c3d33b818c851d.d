/root/repo/target/debug/deps/fig05-27c3d33b818c851d.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/fig05-27c3d33b818c851d: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
