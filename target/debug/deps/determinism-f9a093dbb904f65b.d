/root/repo/target/debug/deps/determinism-f9a093dbb904f65b.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-f9a093dbb904f65b: tests/determinism.rs

tests/determinism.rs:
