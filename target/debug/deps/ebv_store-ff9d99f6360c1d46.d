/root/repo/target/debug/deps/ebv_store-ff9d99f6360c1d46.d: crates/store/src/lib.rs crates/store/src/cache.rs crates/store/src/disk.rs crates/store/src/kv.rs crates/store/src/stats.rs crates/store/src/utxo.rs

/root/repo/target/debug/deps/ebv_store-ff9d99f6360c1d46: crates/store/src/lib.rs crates/store/src/cache.rs crates/store/src/disk.rs crates/store/src/kv.rs crates/store/src/stats.rs crates/store/src/utxo.rs

crates/store/src/lib.rs:
crates/store/src/cache.rs:
crates/store/src/disk.rs:
crates/store/src/kv.rs:
crates/store/src/stats.rs:
crates/store/src/utxo.rs:
