/root/repo/target/debug/deps/pipeline-79e56833587847a5.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-79e56833587847a5: tests/pipeline.rs

tests/pipeline.rs:
