/root/repo/target/debug/examples/quickstart-4ff880b628cd4483.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4ff880b628cd4483: examples/quickstart.rs

examples/quickstart.rs:
