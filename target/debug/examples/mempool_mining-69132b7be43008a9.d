/root/repo/target/debug/examples/mempool_mining-69132b7be43008a9.d: examples/mempool_mining.rs

/root/repo/target/debug/examples/mempool_mining-69132b7be43008a9: examples/mempool_mining.rs

examples/mempool_mining.rs:
