/root/repo/target/debug/examples/ibd_comparison-8b7ae550622de215.d: examples/ibd_comparison.rs

/root/repo/target/debug/examples/ibd_comparison-8b7ae550622de215: examples/ibd_comparison.rs

examples/ibd_comparison.rs:
