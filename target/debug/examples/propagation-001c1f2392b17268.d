/root/repo/target/debug/examples/propagation-001c1f2392b17268.d: examples/propagation.rs

/root/repo/target/debug/examples/propagation-001c1f2392b17268: examples/propagation.rs

examples/propagation.rs:
