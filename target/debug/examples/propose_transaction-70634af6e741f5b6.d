/root/repo/target/debug/examples/propose_transaction-70634af6e741f5b6.d: examples/propose_transaction.rs

/root/repo/target/debug/examples/propose_transaction-70634af6e741f5b6: examples/propose_transaction.rs

examples/propose_transaction.rs:
