//! Facade crate for the EBV reproduction workspace.
//!
//! Re-exports every subsystem so that examples, integration tests and
//! downstream users can depend on a single crate. See the individual crates
//! for detailed documentation:
//!
//! * [`primitives`] — hashing, secp256k1 ECDSA, wire encoding.
//! * [`script`] — the stack-based Script Validation engine.
//! * [`chain`] — transactions, blocks, Merkle trees with branch proofs.
//! * [`store`] — the byte-budgeted status database (UTXO set substrate).
//! * [`core`] — the EBV mechanism itself: bit-vector status set, input
//!   proofs, tidy transactions, stake positions, the EBV and baseline
//!   validators, the intermediary converter and the IBD driver.
//! * [`workload`] — deterministic synthetic mainnet-like chain generation.
//! * [`netsim`] — the discrete-event gossip simulator behind the
//!   propagation-delay experiment.
//! * [`telemetry`] — metric registry (counters, gauges, histograms), span
//!   timers, structured event trace, Prometheus/JSON exporters.
//!
//! # Example
//!
//! Generate a chain, convert it to EBV format, and validate it with
//! nothing but headers and bit-vectors:
//!
//! ```
//! use ebv::core::{EbvConfig, EbvNode, Intermediary};
//! use ebv::workload::{ChainGenerator, GeneratorParams};
//!
//! let blocks = ChainGenerator::new(GeneratorParams::tiny(5, 1)).generate();
//! let ebv_blocks = Intermediary::new(0).convert_chain(&blocks).unwrap();
//!
//! let mut node = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
//! for block in &ebv_blocks[1..] {
//!     node.process_block(block).expect("valid block");
//! }
//! assert_eq!(node.tip_height(), 5);
//! assert!(node.status_memory().optimized > 0);
//! ```

pub use ebv_chain as chain;
pub use ebv_core as core;
pub use ebv_netsim as netsim;
pub use ebv_primitives as primitives;
pub use ebv_script as script;
pub use ebv_store as store;
pub use ebv_telemetry as telemetry;
pub use ebv_workload as workload;
