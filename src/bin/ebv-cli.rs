//! `ebv-cli` — generate, convert, inspect and validate chains from the
//! command line.
//!
//! ```text
//! ebv-cli generate --blocks 200 --seed 7 --out chain.bin
//! ebv-cli convert  --in chain.bin --out chain.ebv
//! ebv-cli info     --in chain.bin
//! ebv-cli validate --in chain.ebv [--budget BYTES] [--latency-us US]
//! ebv-cli metrics  --in chain.ebv [--out PROM] [--json-out JSON] [--trace-out JSONL]
//! ebv-cli trace-tree --in trace.jsonl
//! ebv-cli postmortem bundle.json
//! ebv-cli health   --slo slo.json (--metrics snap.json | --in chain.ebv) [--gate]
//! ```
//!
//! `metrics` validates the chain with telemetry enabled and emits the
//! metric registry in Prometheus text format (stdout, or `--out`), and
//! optionally as a JSON snapshot (`--json-out`) plus the structured event
//! trace as JSONL (`--trace-out`).
//!
//! `trace-tree` reconstructs the causal span trees from a JSONL event
//! trace (one tree per trace id, children indented under parents, wall
//! times and attributed-event counts per span). `postmortem` pretty-prints
//! a flight-recorder bundle as its causal chain. `health` evaluates an SLO
//! document against a metrics snapshot (from `--metrics`, or freshly
//! produced by validating `--in`) and, with `--gate`, exits nonzero on any
//! breach — the CI gate mode.
//!
//! Chain files are a 8-byte magic (`EBVCHN1\n` baseline / `EBVCHN2\n`
//! EBV), a varint block count, then serialized blocks.

use ebv::chain::Block;
use ebv::core::{BaselineConfig, BaselineNode, EbvBlock, EbvConfig, EbvNode, Intermediary};
use ebv::primitives::encode::{write_varint, Decodable, Encodable, Reader};
use ebv::store::{KvStore, LatencyModel, StoreConfig, UtxoSet};
use ebv::workload::{ChainGenerator, ChainProfile, GeneratorParams};
use std::collections::HashMap;
use std::process::exit;

const MAGIC_BASELINE: &[u8; 8] = b"EBVCHN1\n";
const MAGIC_EBV: &[u8; 8] = b"EBVCHN2\n";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
    };
    // `postmortem` takes a positional file; `health` has a boolean flag.
    // Both need handling before the pair-based flag parser.
    match command.as_str() {
        "postmortem" => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: ebv-cli postmortem <bundle.json>");
                exit(2);
            };
            return postmortem(path);
        }
        "health" => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let gate = match rest.iter().position(|a| a == "--gate") {
                Some(i) => {
                    rest.remove(i);
                    true
                }
                None => false,
            };
            return health(&parse_flags(&rest), gate);
        }
        _ => {}
    }
    let flags = parse_flags(&args[1..]);
    match command.as_str() {
        "generate" => generate(&flags),
        "convert" => convert(&flags),
        "info" => info(&flags),
        "validate" => validate(&flags),
        "metrics" => metrics(&flags),
        "trace-tree" => trace_tree(&flags),
        _ => usage(),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ebv-cli <command> [flags]\n\
         \x20 generate --blocks N [--seed S] --out FILE\n\
         \x20 convert  --in FILE --out FILE\n\
         \x20 info     --in FILE\n\
         \x20 validate --in FILE [--budget BYTES] [--latency-us US]\n\
         \x20 metrics  --in FILE [--budget BYTES] [--latency-us US]\n\
         \x20          [--out PROM] [--json-out JSON] [--trace-out JSONL]\n\
         \x20 trace-tree --in JSONL\n\
         \x20 postmortem FILE\n\
         \x20 health   --slo FILE (--metrics JSON | --in CHAIN) [--gate]"
    );
    exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].strip_prefix("--").unwrap_or_else(|| {
            eprintln!("expected flag, got {:?}", args[i]);
            exit(2);
        });
        let Some(value) = args.get(i + 1) else {
            eprintln!("missing value for --{key}");
            exit(2);
        };
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    flags
}

fn flag_num<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value {v:?} for --{key}");
            exit(2);
        }),
    }
}

fn flag_path<'a>(flags: &'a HashMap<String, String>, key: &str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or_else(|| {
        eprintln!("missing required --{key}");
        exit(2);
    })
}

fn generate(flags: &HashMap<String, String>) {
    let blocks = flag_num(flags, "blocks", 100u32);
    let seed = flag_num(flags, "seed", 1u64);
    let out = flag_path(flags, "out");
    let chain = ChainGenerator::new(GeneratorParams::mainnet_like(blocks, seed)).generate();
    let mut bytes = MAGIC_BASELINE.to_vec();
    write_varint(&mut bytes, chain.len() as u64);
    for block in &chain {
        block.encode(&mut bytes);
    }
    std::fs::write(out, &bytes).unwrap_or_else(die("writing output"));
    let stats = ChainGenerator::stats(&chain);
    println!(
        "wrote {} blocks ({} txs, {} inputs, {} outputs) to {out}",
        stats.blocks, stats.transactions, stats.inputs, stats.outputs
    );
}

fn load(path: &str) -> (bool, Vec<u8>) {
    let bytes = std::fs::read(path).unwrap_or_else(die("reading input"));
    if bytes.len() < 8 {
        eprintln!("{path}: not a chain file");
        exit(1);
    }
    match &bytes[..8] {
        m if m == MAGIC_BASELINE => (false, bytes),
        m if m == MAGIC_EBV => (true, bytes),
        _ => {
            eprintln!("{path}: unknown magic");
            exit(1);
        }
    }
}

fn read_chain<T: Decodable>(bytes: &[u8]) -> Vec<T> {
    let mut r = Reader::new(&bytes[8..]);
    let n = r.read_len().unwrap_or_else(die("reading count"));
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(T::decode(&mut r).unwrap_or_else(die(&format!("decoding block {i}"))));
    }
    out
}

fn convert(flags: &HashMap<String, String>) {
    let (is_ebv, bytes) = load(flag_path(flags, "in"));
    if is_ebv {
        eprintln!("input is already EBV-format");
        exit(1);
    }
    let chain: Vec<Block> = read_chain(&bytes);
    let mut intermediary = Intermediary::new(0);
    let ebv_chain = intermediary
        .convert_chain(&chain)
        .unwrap_or_else(die("converting"));
    let mut out_bytes = MAGIC_EBV.to_vec();
    write_varint(&mut out_bytes, ebv_chain.len() as u64);
    for block in &ebv_chain {
        block.encode(&mut out_bytes);
    }
    let out = flag_path(flags, "out");
    std::fs::write(out, &out_bytes).unwrap_or_else(die("writing output"));
    println!(
        "converted {} blocks ({} → {} bytes, {:.2}× proof overhead) to {out}",
        ebv_chain.len(),
        bytes.len(),
        out_bytes.len(),
        out_bytes.len() as f64 / bytes.len() as f64
    );
}

fn info(flags: &HashMap<String, String>) {
    let (is_ebv, bytes) = load(flag_path(flags, "in"));
    if is_ebv {
        let chain: Vec<EbvBlock> = read_chain(&bytes);
        let inputs: usize = chain.iter().map(EbvBlock::input_count).sum();
        let outputs: u32 = chain.iter().map(EbvBlock::output_count).sum();
        println!(
            "EBV chain: {} blocks, {} inputs, {} outputs, tip {}",
            chain.len(),
            inputs,
            outputs,
            chain.last().expect("nonempty").header.hash()
        );
    } else {
        let chain: Vec<Block> = read_chain(&bytes);
        let profile = ChainProfile::measure(&chain);
        println!(
            "baseline chain: {} blocks, mean {:.1} inputs/block, mean {:.1} outputs/block, tip {}",
            chain.len(),
            profile.mean_inputs(),
            profile.mean_outputs(),
            chain.last().expect("nonempty").header.hash()
        );
    }
}

fn validate(flags: &HashMap<String, String>) {
    validate_chain(flags, true);
}

fn validate_chain(flags: &HashMap<String, String>, report: bool) {
    let (is_ebv, bytes) = load(flag_path(flags, "in"));
    // Root of the validation trace: the per-block spans inside the nodes
    // nest under this, so `metrics --trace-out` + `trace-tree` shows the
    // whole run as one tree. Inert when telemetry is disabled.
    let _run_span = ebv::telemetry::SpanGuard::enter_root("cli.validate", 0xc11);
    let started = ebv::telemetry::Stopwatch::start();
    if is_ebv {
        let chain: Vec<EbvBlock> = read_chain(&bytes);
        let mut node = EbvNode::new(&chain[0], EbvConfig::default());
        for (h, block) in chain.iter().enumerate().skip(1) {
            node.process_block(block)
                .unwrap_or_else(die(&format!("block {h} invalid")));
        }
        if !report {
            return;
        }
        let b = node.cumulative_breakdown();
        println!(
            "valid EBV chain: height {}, {} unspent, status memory {} bytes",
            node.tip_height(),
            node.total_unspent(),
            node.status_memory().optimized
        );
        println!(
            "validation {:.2}s (ev {:.3}s, uv {:.3}s, sv {:.2}s, commit {:.3}s, others {:.3}s); wall {:.2}s",
            b.total().as_secs_f64(),
            b.ev.as_secs_f64(),
            b.uv.as_secs_f64(),
            b.sv.as_secs_f64(),
            b.commit.as_secs_f64(),
            b.others.as_secs_f64(),
            started.elapsed().as_secs_f64()
        );
    } else {
        let chain: Vec<Block> = read_chain(&bytes);
        let store = KvStore::open(StoreConfig {
            cache_budget: flag_num(flags, "budget", 24usize << 10),
            latency: LatencyModel::scaled_hdd(flag_num(flags, "latency-us", 0u64), 0),
            path: None,
        })
        .unwrap_or_else(die("opening store"));
        let mut node = BaselineNode::new(&chain[0], UtxoSet::new(store), BaselineConfig::default())
            .unwrap_or_else(die("booting node"));
        for (h, block) in chain.iter().enumerate().skip(1) {
            node.process_block(block)
                .unwrap_or_else(die(&format!("block {h} invalid")));
        }
        if !report {
            return;
        }
        let b = node.cumulative_breakdown();
        println!(
            "valid baseline chain: height {}, {} UTXOs, set {} bytes, cache hits {:.1}%",
            node.tip_height(),
            node.utxos().size().count,
            node.utxos().size().bytes,
            node.utxos().stats().hit_ratio() * 100.0
        );
        println!(
            "validation {:.2}s (dbo {:.2}s, sv {:.2}s, others {:.3}s); wall {:.2}s",
            b.total().as_secs_f64(),
            b.dbo.as_secs_f64(),
            b.sv.as_secs_f64(),
            b.others.as_secs_f64(),
            started.elapsed().as_secs_f64()
        );
    }
}

/// Validate the chain with telemetry enabled, then export the metric
/// registry. Prometheus text goes to stdout (or `--out`); `--json-out`
/// writes the JSON snapshot and `--trace-out` tees the event trace as
/// JSONL while the run happens.
fn metrics(flags: &HashMap<String, String>) {
    ebv::telemetry::set_enabled(true);
    if let Some(path) = flags.get("trace-out") {
        ebv::telemetry::trace_tee_to_file(std::path::Path::new(path))
            .unwrap_or_else(die("opening trace output"));
    }
    validate_chain(flags, false);
    ebv::telemetry::trace_untee();

    let snap = ebv::telemetry::global().snapshot();
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, ebv::telemetry::prometheus_text(&snap))
                .unwrap_or_else(die("writing metrics"));
            eprintln!("wrote {path}");
        }
        None => print!("{}", ebv::telemetry::prometheus_text(&snap)),
    }
    if let Some(path) = flags.get("json-out") {
        std::fs::write(path, ebv::telemetry::json_snapshot(&snap))
            .unwrap_or_else(die("writing json metrics"));
        eprintln!("wrote {path}");
    }
    if let Some(path) = flags.get("trace-out") {
        eprintln!("wrote {path}");
    }
}

/// One span reconstructed from paired `span.begin`/`span.end` lines.
struct SpanInfo {
    name: String,
    parent: Option<String>,
    seq: f64,
    wall_us: Option<f64>,
    /// Trace lines attributed to this span (excluding begin/end markers).
    events: u32,
}

/// Rebuild the causal span trees from a JSONL event trace and print one
/// indented tree per trace id, in first-appearance order.
fn trace_tree(flags: &HashMap<String, String>) {
    use ebv::telemetry::json::{parse, Value};
    let path = flag_path(flags, "in");
    let text = std::fs::read_to_string(path).unwrap_or_else(die("reading trace"));
    // trace hex -> span hex -> info, traces kept in first-seen order.
    let mut traces: Vec<(String, HashMap<String, SpanInfo>, u32)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    for line in text.lines() {
        let Ok(v) = parse(line) else { continue };
        let Some(trace) = v.get("trace").and_then(Value::as_str) else {
            continue;
        };
        let slot = *index.entry(trace.to_string()).or_insert_with(|| {
            traces.push((trace.to_string(), HashMap::new(), 0));
            traces.len() - 1
        });
        let spans = &mut traces[slot].1;
        let span = v.get("span").and_then(Value::as_str).unwrap_or("");
        match v.get("event").and_then(Value::as_str) {
            Some("span.begin") => {
                spans.insert(
                    span.to_string(),
                    SpanInfo {
                        name: v
                            .get("name")
                            .and_then(Value::as_str)
                            .unwrap_or("?")
                            .to_string(),
                        parent: v.get("parent").and_then(Value::as_str).map(str::to_string),
                        seq: v.get("seq").and_then(Value::as_f64).unwrap_or(0.0),
                        wall_us: None,
                        events: 0,
                    },
                );
            }
            Some("span.end") => {
                if let Some(info) = spans.get_mut(span) {
                    info.wall_us = v.get("wall_us").and_then(Value::as_f64);
                }
            }
            _ => match spans.get_mut(span) {
                Some(info) => info.events += 1,
                None => traces[slot].2 += 1, // event outside any known span
            },
        }
    }
    if traces.is_empty() {
        println!("no traced events in {path}");
        return;
    }
    for (trace, spans, loose) in &traces {
        println!("trace {trace}");
        // Children grouped under parents; roots are spans whose parent is
        // absent or never began inside this trace.
        let mut children: HashMap<&str, Vec<&str>> = HashMap::new();
        let mut roots: Vec<&str> = Vec::new();
        for (id, info) in spans {
            match info.parent.as_deref().filter(|p| spans.contains_key(*p)) {
                Some(p) => children.entry(p).or_default().push(id),
                None => roots.push(id),
            }
        }
        let by_seq = |ids: &mut Vec<&str>| {
            ids.sort_by(|a, b| {
                spans[*a]
                    .seq
                    .partial_cmp(&spans[*b].seq)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        };
        by_seq(&mut roots);
        for ids in children.values_mut() {
            by_seq(ids);
        }
        let mut stack: Vec<(&str, usize)> = roots.iter().rev().map(|&id| (id, 1)).collect();
        while let Some((id, depth)) = stack.pop() {
            let info = &spans[id];
            let wall = match info.wall_us {
                Some(us) => format!("{us:.0}µs"),
                None => "unfinished".to_string(),
            };
            let tail = if info.events > 0 {
                format!("  ({} events)", info.events)
            } else {
                String::new()
            };
            let short = id.get(8..).unwrap_or(id); // low half of the 16-hex id
            println!(
                "{:indent$}{} [{short}]  {wall}{tail}",
                "",
                info.name,
                indent = depth * 2
            );
            if let Some(kids) = children.get(id) {
                for &kid in kids.iter().rev() {
                    stack.push((kid, depth + 1));
                }
            }
        }
        if *loose > 0 {
            println!("  ({loose} events outside any span)");
        }
    }
}

/// Pretty-print a flight-recorder post-mortem bundle as its causal chain.
fn postmortem(path: &str) {
    use ebv::telemetry::json::{parse, serialize, Value};
    let text = std::fs::read_to_string(path).unwrap_or_else(die("reading bundle"));
    let bundle = parse(&text).unwrap_or_else(die("parsing bundle"));
    let schema = bundle.get("schema").and_then(Value::as_str).unwrap_or("?");
    let trigger = bundle.get("trigger").and_then(Value::as_str).unwrap_or("?");
    let trace = bundle
        .get("trace")
        .and_then(Value::as_str)
        .unwrap_or("(none)");
    let seq = bundle.get("seq").and_then(Value::as_f64).unwrap_or(0.0);
    println!("post-mortem bundle #{seq:.0} ({schema})");
    println!("trigger: {trigger}");
    println!("trace:   {trace}");
    if let Some(Value::Object(dropped)) = bundle.get("dropped") {
        let lost: Vec<String> = dropped
            .iter()
            .filter(|(_, v)| v.as_f64().unwrap_or(0.0) > 0.0)
            .map(|(k, v)| format!("{k}={:.0}", v.as_f64().unwrap_or(0.0)))
            .collect();
        if !lost.is_empty() {
            println!(
                "dropped: {} (ring overflow; chain is incomplete)",
                lost.join(" ")
            );
        }
    }
    if let Some(n) = bundle.get("trace_dropped").and_then(Value::as_f64) {
        if n > 0.0 {
            println!("trace_dropped: {n:.0}");
        }
    }
    let Some(Value::Array(events)) = bundle.get("events") else {
        eprintln!("bundle has no events array");
        exit(1);
    };
    println!("causal chain ({} events):", events.len());
    for ev in events {
        let seq = ev.get("seq").and_then(Value::as_f64).unwrap_or(0.0);
        let name = ev.get("event").and_then(Value::as_str).unwrap_or("?");
        let mut fields = String::new();
        if let Value::Object(m) = ev {
            for (k, val) in m {
                if matches!(k.as_str(), "seq" | "ts_us" | "event" | "trace") {
                    continue;
                }
                fields.push_str("  ");
                fields.push_str(k);
                fields.push('=');
                match val {
                    Value::String(s) => fields.push_str(s),
                    other => fields.push_str(&serialize(other)),
                }
            }
        }
        println!("  [{seq:>6.0}] {name}{fields}");
    }
    // Anything beyond the fixed schema keys is trigger-specific context
    // (peer stats, reorg shape, ...).
    if let Value::Object(m) = &bundle {
        for (k, v) in m {
            if matches!(
                k.as_str(),
                "schema"
                    | "seq"
                    | "trigger"
                    | "trace"
                    | "events"
                    | "dropped"
                    | "trace_dropped"
                    | "metrics"
            ) {
                continue;
            }
            println!("{k}: {}", serialize(v));
        }
    }
}

/// Evaluate an SLO document against a metrics snapshot. The snapshot comes
/// from `--metrics` (a `json_snapshot` file) or is produced fresh by
/// validating `--in` with telemetry on. With `gate`, any breach (or a
/// malformed document) exits nonzero so CI can use this as a quality gate.
fn health(flags: &HashMap<String, String>, gate: bool) {
    use ebv::telemetry::json::parse;
    let slo_text =
        std::fs::read_to_string(flag_path(flags, "slo")).unwrap_or_else(die("reading SLO file"));
    let slo = parse(&slo_text).unwrap_or_else(die("parsing SLO file"));
    let metrics_text = if let Some(path) = flags.get("metrics") {
        std::fs::read_to_string(path).unwrap_or_else(die("reading metrics snapshot"))
    } else if flags.contains_key("in") {
        ebv::telemetry::set_enabled(true);
        validate_chain(flags, false);
        ebv::telemetry::json_snapshot(&ebv::telemetry::global().snapshot())
    } else {
        eprintln!("health needs --metrics SNAPSHOT or --in CHAIN");
        exit(2);
    };
    let metrics = parse(&metrics_text).unwrap_or_else(die("parsing metrics snapshot"));
    match ebv::telemetry::evaluate_slo(&metrics, &slo) {
        Err(e) => {
            eprintln!("bad SLO document: {e}");
            exit(2);
        }
        Ok(violations) if violations.is_empty() => {
            println!("health: all SLOs pass");
        }
        Ok(violations) => {
            for v in &violations {
                println!("SLO breach [{}]: {}", v.rule, v.detail);
            }
            if gate {
                exit(1);
            }
        }
    }
}

fn die<E: std::fmt::Debug, T>(what: &str) -> impl FnOnce(E) -> T + '_ {
    move |e| {
        eprintln!("error {what}: {e:?}");
        exit(1)
    }
}
