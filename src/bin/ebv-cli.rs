//! `ebv-cli` — generate, convert, inspect and validate chains from the
//! command line.
//!
//! ```text
//! ebv-cli generate --blocks 200 --seed 7 --out chain.bin
//! ebv-cli convert  --in chain.bin --out chain.ebv
//! ebv-cli info     --in chain.bin
//! ebv-cli validate --in chain.ebv [--budget BYTES] [--latency-us US]
//! ebv-cli metrics  --in chain.ebv [--out PROM] [--json-out JSON] [--trace-out JSONL]
//! ```
//!
//! `metrics` validates the chain with telemetry enabled and emits the
//! metric registry in Prometheus text format (stdout, or `--out`), and
//! optionally as a JSON snapshot (`--json-out`) plus the structured event
//! trace as JSONL (`--trace-out`).
//!
//! Chain files are a 8-byte magic (`EBVCHN1\n` baseline / `EBVCHN2\n`
//! EBV), a varint block count, then serialized blocks.

use ebv::chain::Block;
use ebv::core::{BaselineConfig, BaselineNode, EbvBlock, EbvConfig, EbvNode, Intermediary};
use ebv::primitives::encode::{write_varint, Decodable, Encodable, Reader};
use ebv::store::{KvStore, LatencyModel, StoreConfig, UtxoSet};
use ebv::workload::{ChainGenerator, ChainProfile, GeneratorParams};
use std::collections::HashMap;
use std::process::exit;

const MAGIC_BASELINE: &[u8; 8] = b"EBVCHN1\n";
const MAGIC_EBV: &[u8; 8] = b"EBVCHN2\n";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
    };
    let flags = parse_flags(&args[1..]);
    match command.as_str() {
        "generate" => generate(&flags),
        "convert" => convert(&flags),
        "info" => info(&flags),
        "validate" => validate(&flags),
        "metrics" => metrics(&flags),
        _ => usage(),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ebv-cli <command> [flags]\n\
         \x20 generate --blocks N [--seed S] --out FILE\n\
         \x20 convert  --in FILE --out FILE\n\
         \x20 info     --in FILE\n\
         \x20 validate --in FILE [--budget BYTES] [--latency-us US]\n\
         \x20 metrics  --in FILE [--budget BYTES] [--latency-us US]\n\
         \x20          [--out PROM] [--json-out JSON] [--trace-out JSONL]"
    );
    exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].strip_prefix("--").unwrap_or_else(|| {
            eprintln!("expected flag, got {:?}", args[i]);
            exit(2);
        });
        let Some(value) = args.get(i + 1) else {
            eprintln!("missing value for --{key}");
            exit(2);
        };
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    flags
}

fn flag_num<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value {v:?} for --{key}");
            exit(2);
        }),
    }
}

fn flag_path<'a>(flags: &'a HashMap<String, String>, key: &str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or_else(|| {
        eprintln!("missing required --{key}");
        exit(2);
    })
}

fn generate(flags: &HashMap<String, String>) {
    let blocks = flag_num(flags, "blocks", 100u32);
    let seed = flag_num(flags, "seed", 1u64);
    let out = flag_path(flags, "out");
    let chain = ChainGenerator::new(GeneratorParams::mainnet_like(blocks, seed)).generate();
    let mut bytes = MAGIC_BASELINE.to_vec();
    write_varint(&mut bytes, chain.len() as u64);
    for block in &chain {
        block.encode(&mut bytes);
    }
    std::fs::write(out, &bytes).unwrap_or_else(die("writing output"));
    let stats = ChainGenerator::stats(&chain);
    println!(
        "wrote {} blocks ({} txs, {} inputs, {} outputs) to {out}",
        stats.blocks, stats.transactions, stats.inputs, stats.outputs
    );
}

fn load(path: &str) -> (bool, Vec<u8>) {
    let bytes = std::fs::read(path).unwrap_or_else(die("reading input"));
    if bytes.len() < 8 {
        eprintln!("{path}: not a chain file");
        exit(1);
    }
    match &bytes[..8] {
        m if m == MAGIC_BASELINE => (false, bytes),
        m if m == MAGIC_EBV => (true, bytes),
        _ => {
            eprintln!("{path}: unknown magic");
            exit(1);
        }
    }
}

fn read_chain<T: Decodable>(bytes: &[u8]) -> Vec<T> {
    let mut r = Reader::new(&bytes[8..]);
    let n = r.read_len().unwrap_or_else(die("reading count"));
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(T::decode(&mut r).unwrap_or_else(die(&format!("decoding block {i}"))));
    }
    out
}

fn convert(flags: &HashMap<String, String>) {
    let (is_ebv, bytes) = load(flag_path(flags, "in"));
    if is_ebv {
        eprintln!("input is already EBV-format");
        exit(1);
    }
    let chain: Vec<Block> = read_chain(&bytes);
    let mut intermediary = Intermediary::new(0);
    let ebv_chain = intermediary
        .convert_chain(&chain)
        .unwrap_or_else(die("converting"));
    let mut out_bytes = MAGIC_EBV.to_vec();
    write_varint(&mut out_bytes, ebv_chain.len() as u64);
    for block in &ebv_chain {
        block.encode(&mut out_bytes);
    }
    let out = flag_path(flags, "out");
    std::fs::write(out, &out_bytes).unwrap_or_else(die("writing output"));
    println!(
        "converted {} blocks ({} → {} bytes, {:.2}× proof overhead) to {out}",
        ebv_chain.len(),
        bytes.len(),
        out_bytes.len(),
        out_bytes.len() as f64 / bytes.len() as f64
    );
}

fn info(flags: &HashMap<String, String>) {
    let (is_ebv, bytes) = load(flag_path(flags, "in"));
    if is_ebv {
        let chain: Vec<EbvBlock> = read_chain(&bytes);
        let inputs: usize = chain.iter().map(EbvBlock::input_count).sum();
        let outputs: u32 = chain.iter().map(EbvBlock::output_count).sum();
        println!(
            "EBV chain: {} blocks, {} inputs, {} outputs, tip {}",
            chain.len(),
            inputs,
            outputs,
            chain.last().expect("nonempty").header.hash()
        );
    } else {
        let chain: Vec<Block> = read_chain(&bytes);
        let profile = ChainProfile::measure(&chain);
        println!(
            "baseline chain: {} blocks, mean {:.1} inputs/block, mean {:.1} outputs/block, tip {}",
            chain.len(),
            profile.mean_inputs(),
            profile.mean_outputs(),
            chain.last().expect("nonempty").header.hash()
        );
    }
}

fn validate(flags: &HashMap<String, String>) {
    validate_chain(flags, true);
}

fn validate_chain(flags: &HashMap<String, String>, report: bool) {
    let (is_ebv, bytes) = load(flag_path(flags, "in"));
    let started = ebv::telemetry::Stopwatch::start();
    if is_ebv {
        let chain: Vec<EbvBlock> = read_chain(&bytes);
        let mut node = EbvNode::new(&chain[0], EbvConfig::default());
        for (h, block) in chain.iter().enumerate().skip(1) {
            node.process_block(block)
                .unwrap_or_else(die(&format!("block {h} invalid")));
        }
        if !report {
            return;
        }
        let b = node.cumulative_breakdown();
        println!(
            "valid EBV chain: height {}, {} unspent, status memory {} bytes",
            node.tip_height(),
            node.total_unspent(),
            node.status_memory().optimized
        );
        println!(
            "validation {:.2}s (ev {:.3}s, uv {:.3}s, sv {:.2}s, commit {:.3}s, others {:.3}s); wall {:.2}s",
            b.total().as_secs_f64(),
            b.ev.as_secs_f64(),
            b.uv.as_secs_f64(),
            b.sv.as_secs_f64(),
            b.commit.as_secs_f64(),
            b.others.as_secs_f64(),
            started.elapsed().as_secs_f64()
        );
    } else {
        let chain: Vec<Block> = read_chain(&bytes);
        let store = KvStore::open(StoreConfig {
            cache_budget: flag_num(flags, "budget", 24usize << 10),
            latency: LatencyModel::scaled_hdd(flag_num(flags, "latency-us", 0u64), 0),
            path: None,
        })
        .unwrap_or_else(die("opening store"));
        let mut node = BaselineNode::new(&chain[0], UtxoSet::new(store), BaselineConfig::default())
            .unwrap_or_else(die("booting node"));
        for (h, block) in chain.iter().enumerate().skip(1) {
            node.process_block(block)
                .unwrap_or_else(die(&format!("block {h} invalid")));
        }
        if !report {
            return;
        }
        let b = node.cumulative_breakdown();
        println!(
            "valid baseline chain: height {}, {} UTXOs, set {} bytes, cache hits {:.1}%",
            node.tip_height(),
            node.utxos().size().count,
            node.utxos().size().bytes,
            node.utxos().stats().hit_ratio() * 100.0
        );
        println!(
            "validation {:.2}s (dbo {:.2}s, sv {:.2}s, others {:.3}s); wall {:.2}s",
            b.total().as_secs_f64(),
            b.dbo.as_secs_f64(),
            b.sv.as_secs_f64(),
            b.others.as_secs_f64(),
            started.elapsed().as_secs_f64()
        );
    }
}

/// Validate the chain with telemetry enabled, then export the metric
/// registry. Prometheus text goes to stdout (or `--out`); `--json-out`
/// writes the JSON snapshot and `--trace-out` tees the event trace as
/// JSONL while the run happens.
fn metrics(flags: &HashMap<String, String>) {
    ebv::telemetry::set_enabled(true);
    if let Some(path) = flags.get("trace-out") {
        ebv::telemetry::trace_tee_to_file(std::path::Path::new(path))
            .unwrap_or_else(die("opening trace output"));
    }
    validate_chain(flags, false);
    ebv::telemetry::trace_untee();

    let snap = ebv::telemetry::global().snapshot();
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, ebv::telemetry::prometheus_text(&snap))
                .unwrap_or_else(die("writing metrics"));
            eprintln!("wrote {path}");
        }
        None => print!("{}", ebv::telemetry::prometheus_text(&snap)),
    }
    if let Some(path) = flags.get("json-out") {
        std::fs::write(path, ebv::telemetry::json_snapshot(&snap))
            .unwrap_or_else(die("writing json metrics"));
        eprintln!("wrote {path}");
    }
    if let Some(path) = flags.get("trace-out") {
        eprintln!("wrote {path}");
    }
}

fn die<E: std::fmt::Debug, T>(what: &str) -> impl FnOnce(E) -> T + '_ {
    move |e| {
        eprintln!("error {what}: {e:?}");
        exit(1)
    }
}
