#!/usr/bin/env bash
# Tier-1 CI gate. Run from the repository root:
#
#   scripts/ci.sh
#
# Mirrors .github/workflows/ci.yml exactly so a green local run implies a
# green CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "CI gate passed."
