#!/usr/bin/env bash
# Tier-1 CI gate. Run from the repository root:
#
#   scripts/ci.sh
#
# Mirrors .github/workflows/ci.yml exactly so a green local run implies a
# green CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> no build artifacts in the index"
if [ -n "$(git ls-files target)" ]; then
    echo "error: target/ build artifacts are committed; run 'git rm -r --cached target'" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The fault matrix is part of 'cargo test' above, but run it by name too so
# a failure is attributed unambiguously. Seeds are fixed inside the tests —
# every run exercises the identical fault schedule.
echo "==> cargo test --test fault_sync (deterministic fault matrix)"
cargo test -q --test fault_sync

# The TCP fault matrix re-runs the content-fault differential over real
# localhost sockets and adds the byte-level adversaries (slow-loris,
# oversized frames, mid-frame disconnects, garbage, truncation, checksum
# corruption, churn). A hang here is a framing-deadline bug, so the suite
# runs under a hard wall-clock cap rather than waiting for CI's global
# timeout to attribute it.
echo "==> cargo test --test wire_sync (TCP fault matrix, 120s cap)"
timeout 120 cargo test -q --test wire_sync

# The wire-codec suite structurally fuzzes the frame format (every
# truncation boundary, every header bit) alongside the §V attack tests.
echo "==> cargo test --test security (attacks + wire codec, 120s cap)"
timeout 120 cargo test -q --test security

# Snapshot-parallel IBD must reach a final state byte-identical to the
# sequential replay, and a corrupted checkpoint must be caught at the
# stitch; run the suite by name so a regression is attributed directly.
echo "==> cargo test --test parallel_ibd (differential + stitch tamper)"
cargo test -q --test parallel_ibd

# Causal tracing, flight-recorder post-mortems, and the health watchdog:
# same-seed determinism, a bundle at every failure class, bundles written
# to disk. The suite clears process-global telemetry state between tests,
# so a hang is a lock bug — cap it.
echo "==> cargo test --test observability (trace trees + post-mortems, 120s cap)"
timeout 120 cargo test -q --test observability

# Exercise the fig17 --parallel-ibd path end to end, with the time-series
# recorder on. Writes under target/ so a small smoke run never clobbers
# the committed BENCH_fig17.json / BENCH_trace.json (which come from
# full-scale runs).
echo "==> fig17 parallel-IBD smoke"
./target/release/fig17 --blocks 130 --runs 1 --parallel-ibd 2 \
    --timeseries-out target/trace_smoke.jsonl \
    --json target/BENCH_fig17_smoke.json > /dev/null

# Health gate smoke: validate a generated chain with telemetry on and
# evaluate the committed SLO document against the resulting snapshot.
# Proves `ebv-cli health --gate` is usable as a CI quality gate.
echo "==> ebv-cli health gate smoke (committed slo.json)"
./target/release/ebv-cli generate --blocks 60 --seed 7 \
    --out target/slo_smoke.bin > /dev/null
./target/release/ebv-cli convert --in target/slo_smoke.bin \
    --out target/slo_smoke.ebv > /dev/null
./target/release/ebv-cli health --slo slo.json --in target/slo_smoke.ebv --gate

# Sync-under-faults bench smoke: wall time plus time-to-ban per adversary
# class over real TCP. Small size into target/ — the committed
# BENCH_sync.json comes from the full-scale run (--blocks 40 --runs 3).
# --gate regresses the current time-to-ban against the committed figures:
# every committed adversary class must still ban, with the same slug, no
# slower than 10x the committed mean.
echo "==> syncbench smoke + time-to-ban gate (180s cap)"
timeout 180 ./target/release/syncbench --blocks 16 --runs 1 \
    --gate BENCH_sync.json \
    --json target/BENCH_sync_smoke.json > /dev/null

# Eclipse resistance: the adversary must win a majority of seeds against
# a naive address manager and none against the hardened PeerManager, and
# a hardened victim must still reach the honest tip through its
# post-campaign tables. Campaigns are seeded and deterministic; the cap
# catches a campaign that stops terminating.
echo "==> cargo test --test eclipse (eclipse campaigns, 120s cap)"
timeout 120 cargo test -q --release --test eclipse

# Partition recovery: 500 netsim nodes must converge onto the heavier
# branch after the heal through the real reorg engine, EBV and baseline
# models must reach identical post-heal state, and a fork deeper than
# max_reorg_depth must fail closed on both node types.
echo "==> cargo test --test partition_heal (partition recovery, 120s cap)"
timeout 120 cargo test -q --release --test partition_heal

# Netsim bench smoke: propagation percentiles, eclipse probability per
# defense arm, and the partition-heal differential at reduced scale.
# Writes under target/ — the committed BENCH_netsim.json comes from the
# full-scale run (defaults: 1000-node propagation, 24 eclipse seeds,
# 500-node partition).
echo "==> netsimbench smoke (eclipse + partition + propagation, 180s cap)"
timeout 180 ./target/release/netsimbench --prop-nodes 200 --prop-runs 1 \
    --nodes 60 --seeds 4 \
    --json target/BENCH_netsim_smoke.json > /dev/null

# Batch ECDSA verification must be a pure performance layer: the
# crypto-level differential suite (edge scalars, mixed batches,
# odd-parity fallback, cancellation-attack probe) and the node-level
# tamper differential (identical error selection with batching on and
# off) both run by name.
echo "==> cargo test -p ebv-primitives --test batch_verify (batch ECDSA differential)"
cargo test -q -p ebv-primitives --test batch_verify

echo "==> cargo test --test batch_pipeline (node batch-on/off tamper differential)"
cargo test -q --test batch_pipeline

# Exercise the fig16 --batch-verify path end to end. Small smoke into
# target/ — the committed BENCH_fig16.json comes from the full-scale run
# (--batch-verify --sweep-workers 1,2,4).
echo "==> fig16 batch-verify smoke"
./target/release/fig16 --blocks 120 --batch-verify \
    --json target/BENCH_fig16_smoke.json > /dev/null

# Telemetry guards. The overhead test proves instrumentation is cheap
# enough to leave on; the exporter tests pin the Prometheus/JSON formats
# to their golden files.
echo "==> cargo test --test telemetry_overhead (telemetry overhead < 5%)"
cargo test -q --test telemetry_overhead

echo "==> cargo test -p ebv-telemetry --test export_format (exporter golden files)"
cargo test -q -p ebv-telemetry --test export_format

echo "==> cargo test -p ebv-telemetry --test postmortem_schema (bundle golden file)"
cargo test -q -p ebv-telemetry --test postmortem_schema

# Bare Instant::now() is reserved for crates/telemetry (span!/Stopwatch)
# and crates/bench; scheduling/simulation call sites are allowlisted in
# scripts/instant_allowlist.txt. Everything else must go through the
# telemetry crate so measurement stays centralized.
echo "==> bare Instant::now() guard"
violations=$(grep -rln 'Instant::now()' --include='*.rs' crates src tests shims \
    | grep -v '^crates/telemetry/' \
    | grep -v '^crates/bench/' \
    | grep -v -F -x -f scripts/instant_allowlist.txt || true)
if [ -n "$violations" ]; then
    echo "error: bare Instant::now() outside the telemetry crate (use span!/Stopwatch" >&2
    echo "or add the file to scripts/instant_allowlist.txt with a justification):" >&2
    echo "$violations" >&2
    exit 1
fi

echo "CI gate passed."
