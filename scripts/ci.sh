#!/usr/bin/env bash
# Tier-1 CI gate. Run from the repository root:
#
#   scripts/ci.sh
#
# Mirrors .github/workflows/ci.yml exactly so a green local run implies a
# green CI run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> no build artifacts in the index"
if [ -n "$(git ls-files target)" ]; then
    echo "error: target/ build artifacts are committed; run 'git rm -r --cached target'" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The fault matrix is part of 'cargo test' above, but run it by name too so
# a failure is attributed unambiguously. Seeds are fixed inside the tests —
# every run exercises the identical fault schedule.
echo "==> cargo test --test fault_sync (deterministic fault matrix)"
cargo test -q --test fault_sync

echo "CI gate passed."
