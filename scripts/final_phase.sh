#!/bin/sh
# Final verification phase: rebuild with latest sources, full test suite,
# re-run binaries whose sources changed after the main pipeline, then the
# Criterion bench suite. Outputs land in test_output.txt / bench_output.txt
# (repo root) and results/.
set -x
cd /root/repo || exit 1

cargo build --workspace --bins --examples 2>&1 | grep -E '^error|^warning' -A4 | head -30
echo "=BUILD DONE="

cargo test --workspace 2>&1 | tee /root/repo/test_output.txt | grep -E 'test result: FAILED|panicked' | head -5
echo "=TESTS DONE ($(grep -c 'test result: ok' /root/repo/test_output.txt) suites ok, $(grep -oE '[0-9]+ passed' /root/repo/test_output.txt | awk '{s+=$1} END {print s}') tests passed)="

# Binaries touched since the main pipeline: fig18 (transmission model),
# propagation example, ebv-cli smoke test.
timeout 1200 ./target/debug/fig18 > results/fig18.txt 2>&1 && echo "fig18 OK" || echo "fig18 FAIL"
timeout 600 ./target/debug/examples/propagation > results/example_propagation.txt 2>&1 && echo "propagation OK" || echo "propagation FAIL"
timeout 600 ./target/debug/ebv-cli generate --blocks 40 --seed 3 --out /tmp/cli-chain.bin > results/cli_demo.txt 2>&1 \
  && timeout 600 ./target/debug/ebv-cli convert --in /tmp/cli-chain.bin --out /tmp/cli-chain.ebv >> results/cli_demo.txt 2>&1 \
  && timeout 600 ./target/debug/ebv-cli info --in /tmp/cli-chain.ebv >> results/cli_demo.txt 2>&1 \
  && timeout 600 ./target/debug/ebv-cli validate --in /tmp/cli-chain.ebv >> results/cli_demo.txt 2>&1 \
  && echo "cli OK" || echo "cli FAIL"
rm -f /tmp/cli-chain.bin /tmp/cli-chain.ebv

cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt | grep -E 'time:|error' | head -40
echo "=BENCH DONE="
